package dxt_test

import (
	"strings"
	"testing"
	"testing/quick"

	"ioagent/internal/dxt"
	"ioagent/internal/iosim"
)

func sampleTrace() *dxt.Trace {
	return &dxt.Trace{NProcs: 2, Events: []dxt.Event{
		{Module: "X_POSIX", Rank: 0, File: "/scratch/a", Op: dxt.OpWrite, Seq: 0, Offset: 0, Length: 1024, Start: 0.10, End: 0.12},
		{Module: "X_POSIX", Rank: 1, File: "/scratch/a", Op: dxt.OpWrite, Seq: 0, Offset: 1024, Length: 1024, Start: 0.11, End: 0.14},
		{Module: "X_POSIX", Rank: 0, File: "/scratch/a", Op: dxt.OpRead, Seq: 1, Offset: 0, Length: 2048, Start: 0.50, End: 0.58},
	}}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := dxt.WriteText(&sb, tr); err != nil {
		t.Fatal(err)
	}
	back, err := dxt.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NProcs != 2 || len(back.Events) != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i, e := range back.Events {
		if e != tr.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, e, tr.Events[i])
		}
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	for _, bad := range []string{
		"X_POSIX\t0\twrite\t0\t0\t1024\t0.1\t0.2", // 8 fields
		"X_POSIX\tx\twrite\t0\t0\t1024\t0.1\t0.2\t/f",
		"X_POSIX\t0\tfrobnicate\t0\t0\t1024\t0.1\t0.2\t/f",
	} {
		if _, err := dxt.ParseText(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("dxt.ParseText accepted %q", bad)
		}
	}
}

func TestTimelines(t *testing.T) {
	tls := sampleTrace().Timelines()
	if len(tls) != 2 {
		t.Fatalf("timelines = %d, want 2", len(tls))
	}
	r0 := tls[0]
	if r0.Rank != 0 || r0.Ops != 2 || r0.Bytes != 3072 {
		t.Errorf("rank 0 timeline = %+v", r0)
	}
	if r0.First != 0.10 || r0.Last != 0.58 {
		t.Errorf("rank 0 span = [%g,%g]", r0.First, r0.Last)
	}
}

func TestBursts(t *testing.T) {
	tr := &dxt.Trace{NProcs: 1}
	// Burst 1: 10 ops at 10ms spacing; quiet gap; burst 2: 3 ops (below min).
	base := 0.0
	for i := 0; i < 10; i++ {
		tr.Events = append(tr.Events, dxt.Event{Rank: 0, Op: dxt.OpWrite, Length: 100,
			Start: base, End: base + 0.005})
		base += 0.010
	}
	base += 5.0
	for i := 0; i < 3; i++ {
		tr.Events = append(tr.Events, dxt.Event{Rank: 0, Op: dxt.OpWrite, Length: 100,
			Start: base, End: base + 0.005})
		base += 0.010
	}
	bursts := tr.Bursts(0.050, 8)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1", len(bursts))
	}
	if bursts[0].Ops != 10 || bursts[0].Bytes != 1000 {
		t.Errorf("burst = %+v", bursts[0])
	}
}

func TestStragglerRank(t *testing.T) {
	tr := &dxt.Trace{NProcs: 2, Events: []dxt.Event{
		{Rank: 0, Length: 10, Start: 0, End: 0.1},
		{Rank: 1, Length: 10, Start: 0, End: 1.0},
	}}
	rank, ratio := tr.StragglerRank()
	if rank != 1 || ratio < 1.5 {
		t.Errorf("straggler = rank %d ratio %.2f", rank, ratio)
	}
}

func TestIosimIntegration(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 9, NProcs: 4, UsesMPI: true, EnableDXT: true,
		RankSkew: []float64{1, 1, 1, 4}})
	f := s.OpenShared("/scratch/dxt.dat", iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 16; i++ {
			f.WriteAt(rank, (int64(rank)*16+i)*65536, 65536)
		}
	}
	tr := s.DXT()
	if tr == nil {
		t.Fatal("DXT trace missing despite EnableDXT")
	}
	if len(tr.Events) != 64 {
		t.Fatalf("events = %d, want 64", len(tr.Events))
	}
	rank, ratio := tr.StragglerRank()
	if rank != 3 || ratio < 1.5 {
		t.Errorf("skewed rank not detected: rank %d ratio %.2f", rank, ratio)
	}
	summary := tr.Summary()
	if !strings.Contains(summary, "straggler") {
		t.Errorf("summary missing straggler signal:\n%s", summary)
	}
	// Events must be well-formed: end >= start, per-rank seq increasing.
	lastSeq := map[int]int{}
	for _, e := range tr.Events {
		if e.End < e.Start {
			t.Errorf("event ends before it starts: %+v", e)
		}
		if prev, ok := lastSeq[e.Rank]; ok && e.Seq <= prev && e.Start > 0 {
			_ = prev // seq order within rank is checked loosely (sorted by time)
		}
		lastSeq[e.Rank] = e.Seq
	}
	s.Finalize()
}

func TestDXTDisabledByDefault(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 1, NProcs: 1})
	f := s.Open("/scratch/x", 0, iosim.POSIX, nil)
	f.WriteAt(0, 0, 1024)
	if s.DXT() != nil {
		t.Error("DXT should be nil when not enabled (as in production)")
	}
	s.Finalize()
}

// Property: text round-trip preserves any well-formed event.
func TestRoundTripProperty(t *testing.T) {
	f := func(rank uint8, off, length uint32, start uint16) bool {
		tr := &dxt.Trace{NProcs: int(rank) + 1, Events: []dxt.Event{{
			Module: "X_POSIX", Rank: int(rank), File: "/f", Op: dxt.OpRead,
			Offset: int64(off), Length: int64(length),
			// Quarter-second steps stay exactly representable through the text round trip.
			Start: float64(start) / 4, End: float64(start)/4 + 0.5,
		}}}
		var sb strings.Builder
		if err := dxt.WriteText(&sb, tr); err != nil {
			return false
		}
		back, err := dxt.ParseText(strings.NewReader(sb.String()))
		if err != nil || len(back.Events) != 1 {
			return false
		}
		return back.Events[0] == tr.Events[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
