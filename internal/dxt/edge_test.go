package dxt

import (
	"math"
	"testing"
)

// ev builds a minimal event for analytics edge tests.
func ev(rank int, start, end float64, length int64) Event {
	return Event{Module: "X_POSIX", Rank: rank, File: "/f", Op: OpWrite, Length: length, Start: start, End: end}
}

func TestBurstsEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		maxGap float64
		minOps int
		want   []Burst
	}{
		{
			name:   "empty trace",
			events: nil,
			maxGap: 0.050,
			minOps: 1,
			want:   nil,
		},
		{
			name:   "single op kept at minOps 1",
			events: []Event{ev(0, 0.10, 0.20, 512)},
			maxGap: 0.050,
			minOps: 1,
			want:   []Burst{{Start: 0.10, End: 0.20, Ops: 1, Bytes: 512}},
		},
		{
			name:   "single op dropped below minOps",
			events: []Event{ev(0, 0.10, 0.20, 512)},
			maxGap: 0.050,
			minOps: 2,
			want:   nil,
		},
		{
			// Zero maxGap still merges back-to-back ops (gap == 0 is
			// within the gap budget) but splits on any positive gap.
			name: "zero maxGap splits on any positive gap",
			events: []Event{
				ev(0, 0.00, 0.10, 100),
				ev(0, 0.10, 0.20, 100), // starts exactly at previous end: merged
				ev(0, 0.21, 0.30, 100), // 10ms gap: new burst
			},
			maxGap: 0,
			minOps: 1,
			want: []Burst{
				{Start: 0.00, End: 0.20, Ops: 2, Bytes: 200},
				{Start: 0.21, End: 0.30, Ops: 1, Bytes: 100},
			},
		},
		{
			// An event fully inside the current burst's span must not
			// shrink the burst end.
			name: "nested event keeps burst end",
			events: []Event{
				ev(0, 0.00, 0.50, 100),
				ev(1, 0.10, 0.20, 100),
			},
			maxGap: 0,
			minOps: 1,
			want:   []Burst{{Start: 0.00, End: 0.50, Ops: 2, Bytes: 200}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &Trace{NProcs: 2, Events: tc.events}
			got := tr.Bursts(tc.maxGap, tc.minOps)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d bursts %+v, want %d %+v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("burst %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestStragglerRankEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		events    []Event
		wantRank  int
		wantRatio float64
	}{
		{
			name:      "empty trace",
			events:    nil,
			wantRank:  0,
			wantRatio: 0,
		},
		{
			name:      "single op single rank",
			events:    []Event{ev(3, 0.0, 1.0, 100)},
			wantRank:  0, // fewer than two ranks: no straggler signal
			wantRatio: 0,
		},
		{
			name: "all one rank",
			events: []Event{
				ev(2, 0.0, 1.0, 100),
				ev(2, 1.0, 5.0, 100),
				ev(2, 5.0, 6.0, 100),
			},
			wantRank:  0,
			wantRatio: 0,
		},
		{
			// Two ranks with zero-duration ops: mean busy time is zero,
			// so the ratio is defined as 0 rather than a division blowup.
			name: "zero busy time across ranks",
			events: []Event{
				ev(0, 1.0, 1.0, 100),
				ev(1, 2.0, 2.0, 100),
			},
			wantRank:  0,
			wantRatio: 0,
		},
		{
			// Busy times 1s and 3s: mean 2s, slowest is rank 1 at 1.5x.
			name: "skewed ranks",
			events: []Event{
				ev(0, 0.0, 1.0, 100),
				ev(1, 0.0, 3.0, 100),
			},
			wantRank:  1,
			wantRatio: 1.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &Trace{NProcs: 4, Events: tc.events}
			rank, ratio := tr.StragglerRank()
			if rank != tc.wantRank {
				t.Fatalf("straggler rank = %d, want %d", rank, tc.wantRank)
			}
			if math.Abs(ratio-tc.wantRatio) > 1e-12 {
				t.Fatalf("straggler ratio = %v, want %v", ratio, tc.wantRatio)
			}
		})
	}
}
