package dxt

import (
	"fmt"
	"strconv"
	"strings"
)

// TextMagic is the first line of every DXT text rendering. Ingest layers
// sniff it to select this codec, the same way the gzip magic selects the
// binary Darshan codec.
const TextMagic = "# DXT trace"

// TextParser is the incremental core of ParseText: it consumes a DXT text
// rendering one complete line at a time and accumulates the decoded Trace
// as it goes, so streaming callers (the fleet's ingest parser) can decode
// chunked uploads without buffering the body. Feeding the same lines in
// the same order always yields the same Trace as a whole-body ParseText —
// ParseText is itself implemented on top of this type.
type TextParser struct {
	trace  *Trace
	lineno int
}

// NewTextParser returns a parser accumulating into an empty Trace.
func NewTextParser() *TextParser {
	return &TextParser{trace: &Trace{}}
}

// ParseLine consumes one complete input line (without its trailing
// newline). Blank lines are skipped; errors name the 1-based line number.
func (tp *TextParser) ParseLine(raw string) error {
	tp.lineno++
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		if strings.HasPrefix(line, "# nprocs:") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "# nprocs:")))
			if err != nil {
				return fmt.Errorf("dxt: line %d: bad nprocs", tp.lineno)
			}
			tp.trace.NProcs = n
		}
		return nil
	}
	f := strings.Fields(line)
	if len(f) != 9 {
		return fmt.Errorf("dxt: line %d: expected 9 fields, got %d", tp.lineno, len(f))
	}
	var e Event
	e.Module = f[0]
	var err error
	if e.Rank, err = strconv.Atoi(f[1]); err != nil {
		return fmt.Errorf("dxt: line %d: bad rank", tp.lineno)
	}
	switch f[2] {
	case "read":
		e.Op = OpRead
	case "write":
		e.Op = OpWrite
	default:
		return fmt.Errorf("dxt: line %d: bad op %q", tp.lineno, f[2])
	}
	if e.Seq, err = strconv.Atoi(f[3]); err != nil {
		return fmt.Errorf("dxt: line %d: bad segment", tp.lineno)
	}
	if e.Offset, err = strconv.ParseInt(f[4], 10, 64); err != nil {
		return fmt.Errorf("dxt: line %d: bad offset", tp.lineno)
	}
	if e.Length, err = strconv.ParseInt(f[5], 10, 64); err != nil {
		return fmt.Errorf("dxt: line %d: bad length", tp.lineno)
	}
	if e.Start, err = strconv.ParseFloat(f[6], 64); err != nil {
		return fmt.Errorf("dxt: line %d: bad start", tp.lineno)
	}
	if e.End, err = strconv.ParseFloat(f[7], 64); err != nil {
		return fmt.Errorf("dxt: line %d: bad end", tp.lineno)
	}
	e.File = f[8]
	tp.trace.Events = append(tp.trace.Events, e)
	return nil
}

// Lines returns the number of lines consumed so far (blank lines
// included).
func (tp *TextParser) Lines() int { return tp.lineno }

// Trace returns the accumulated trace. It is live: further ParseLine
// calls keep mutating it, so streaming callers may inspect it mid-parse
// but must stop feeding before handing it off.
func (tp *TextParser) Trace() *Trace { return tp.trace }

// Canonical returns the rendering-neutral form of a trace: a private
// clone whose events are in canonical (start, rank, seq) order with the
// timestamps quantized through the text precision (%.6f — WriteText's
// format). A trace that round-trips through WriteText/ParseText and one
// that never left memory canonicalize to identical contents, which is the
// property darshan.ContentDigest builds on for DXT-carrying logs. The
// receiver is never mutated.
func (t *Trace) Canonical() *Trace {
	c := &Trace{
		NProcs: t.NProcs,
		Events: append([]Event(nil), t.Events...),
	}
	for i := range c.Events {
		c.Events[i].Start = quantizeTS(c.Events[i].Start)
		c.Events[i].End = quantizeTS(c.Events[i].End)
	}
	c.Sort()
	return c
}

// quantizeTS rounds a timestamp through the %.6f text precision, so both
// renderings of one value land on the same float64.
func quantizeTS(v float64) float64 {
	q, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'f', 6, 64), 64)
	return q
}

// TextString renders the trace as a string (WriteText convenience).
func TextString(t *Trace) string {
	var b strings.Builder
	_ = WriteText(&b, t)
	return b.String()
}
