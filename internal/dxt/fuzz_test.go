package dxt

import (
	"math/rand"
	"strings"
	"testing"
)

// fuzzSeedTrace is a small mixed trace used to seed the corpus.
func fuzzSeedTrace() *Trace {
	return &Trace{
		NProcs: 4,
		Events: []Event{
			{Module: "X_POSIX", Rank: 0, File: "/scratch/a", Op: OpWrite, Seq: 0, Offset: 0, Length: 4096, Start: 0.001, End: 0.002},
			{Module: "X_POSIX", Rank: 1, File: "/scratch/a", Op: OpWrite, Seq: 0, Offset: 4096, Length: 4096, Start: 0.0015, End: 0.003},
			{Module: "X_MPIIO", Rank: 2, File: "/scratch/b", Op: OpRead, Seq: 0, Offset: 100, Length: 77, Start: 0.01, End: 0.0125},
			{Module: "X_STDIO", Rank: 3, File: "/scratch/c", Op: OpWrite, Seq: 1, Offset: 3000, Length: 3000, Start: 0.02, End: 0.021},
		},
	}
}

// FuzzParseTextChunking: for arbitrary bodies split at arbitrary chunk
// boundaries, the incremental TextParser (fed reassembled lines, the way
// the fleet's ingest parser drives it) must agree with the whole-body
// ParseText — same accept/reject decision, same canonical trace — and
// neither path may panic on malformed input.
func FuzzParseTextChunking(f *testing.F) {
	f.Add(TextString(fuzzSeedTrace()), uint16(1))
	f.Add(TextString(fuzzSeedTrace()), uint16(97))
	f.Add("# DXT trace\n# nprocs: 2\n", uint16(3))
	f.Add("# DXT trace\n# nprocs: nope\n", uint16(3))
	f.Add("X_POSIX\t0\twrite\t0\t0\t10\t0.1\t0.2\t/f\nshort line\n", uint16(5))
	f.Add("X_POSIX 0 frobnicate 0 0 10 0.1 0.2 /f\n", uint16(5))
	f.Add("X_POSIX\t0\twrite\t0\t0\t1e99\tNaN\tInf\t/f\n", uint16(9))

	f.Fuzz(func(t *testing.T, body string, seed uint16) {
		if len(body) > 1<<20 {
			return
		}
		whole, wholeErr := ParseText(strings.NewReader(body))

		// Incremental: split the body at random byte boundaries, carry
		// partial lines across chunks exactly as ingest does.
		rng := rand.New(rand.NewSource(int64(seed)))
		tp := NewTextParser()
		var carry string
		var incErr error
	feed:
		for off := 0; off < len(body); {
			n := 1 + rng.Intn(97)
			if n > len(body)-off {
				n = len(body) - off
			}
			carry += body[off : off+n]
			off += n
			for {
				nl := strings.IndexByte(carry, '\n')
				if nl < 0 {
					break
				}
				if incErr = tp.ParseLine(carry[:nl]); incErr != nil {
					break feed
				}
				carry = carry[nl+1:]
			}
		}
		if incErr == nil && carry != "" {
			incErr = tp.ParseLine(carry)
		}

		if (wholeErr == nil) != (incErr == nil) {
			t.Fatalf("accept/reject diverged: whole-body err=%v, incremental err=%v (body %q)", wholeErr, incErr, body)
		}
		if wholeErr != nil {
			return
		}
		got := TextString(tp.Trace().Canonical())
		want := TextString(whole.Canonical())
		if got != want {
			t.Fatalf("canonical traces diverged:\nincremental:\n%s\nwhole-body:\n%s", got, want)
		}
	})
}

// FuzzTextRoundTrip: any trace that parses must survive a
// WriteText/ParseText round trip with its canonical form intact, and the
// analytics must tolerate whatever events the parser accepted.
func FuzzTextRoundTrip(f *testing.F) {
	f.Add(TextString(fuzzSeedTrace()))
	f.Add("# DXT trace\n# nprocs: 1\nX_POSIX\t0\twrite\t0\t0\t10\t0.000001\t0.000002\t/f\n")
	f.Add("X_POSIX\t-5\tread\t-1\t-3\t-10\t-0.5\t-0.25\t/f\n")

	f.Fuzz(func(t *testing.T, body string) {
		if len(body) > 1<<20 {
			return
		}
		tr, err := ParseText(strings.NewReader(body))
		if err != nil {
			return
		}
		again, err := ParseText(strings.NewReader(TextString(tr)))
		if err != nil {
			t.Fatalf("re-parse of rendered trace failed: %v", err)
		}
		if got, want := TextString(again.Canonical()), TextString(tr.Canonical()); got != want {
			t.Fatalf("canonical form not stable across round trip:\ngot:\n%s\nwant:\n%s", got, want)
		}
		// Analytics must not panic on any accepted trace.
		tr.Timelines()
		tr.Bursts(0.050, 8)
		tr.Bursts(0, 0)
		tr.StragglerRank()
		_ = tr.Summary()
	})
}
