// Package dxt implements Darshan eXtended Tracing (DXT) — the fine-grained
// per-operation trace format the paper defers to future work ("we focus
// only on the original Darshan I/O traces and leave working with Darshan
// DXT traces as future work"). This package provides that extension: an
// event model matching upstream DXT (file, rank, operation, offset, length,
// start/end timestamps), a text codec in darshan-dxt-parser style, and
// segment analytics (per-rank timelines, bursts, phase detection) that
// complement the aggregate-counter diagnosis with temporal evidence.
package dxt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// OpKind is the traced operation type.
type OpKind uint8

// Operation kinds recorded by DXT.
const (
	OpWrite OpKind = iota
	OpRead
)

// String returns the upstream spelling ("write"/"read").
func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// Event is one traced I/O operation.
type Event struct {
	Module string // "X_POSIX" or "X_MPIIO", as upstream names them
	Rank   int
	File   string
	Op     OpKind
	Seq    int     // per-rank operation ordinal
	Offset int64   // file offset in bytes
	Length int64   // transfer length in bytes
	Start  float64 // seconds relative to job start
	End    float64
}

// Trace is a DXT event stream for one job.
type Trace struct {
	NProcs int
	Events []Event
}

// Sort orders events by (start time, rank, seq) — the canonical order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		a, b := t.Events[i], t.Events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})
}

// WriteText renders the trace in darshan-dxt-parser style:
//
//	# DXT trace
//	# nprocs: 8
//	<module> <rank> <op> <segment> <offset> <length> <start> <end> <file>
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# DXT trace\n# nprocs: %d\n", t.NProcs)
	fmt.Fprintf(bw, "#<module>\t<rank>\t<op>\t<segment>\t<offset>\t<length>\t<start>\t<end>\t<file>\n")
	for _, e := range t.Events {
		fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t%d\t%d\t%.6f\t%.6f\t%s\n",
			e.Module, e.Rank, e.Op, e.Seq, e.Offset, e.Length, e.Start, e.End, e.File)
	}
	return bw.Flush()
}

// ParseText reads a trace written by WriteText. It is a whole-body
// wrapper over TextParser, so buffered and chunked decoding of the same
// bytes agree by construction.
func ParseText(r io.Reader) (*Trace, error) {
	tp := NewTextParser()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		if err := tp.ParseLine(sc.Text()); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tp.Trace(), nil
}

// RankTimeline summarizes one rank's activity.
type RankTimeline struct {
	Rank     int
	Ops      int
	Bytes    int64
	BusyTime float64 // sum of (end-start)
	First    float64
	Last     float64
}

// Timelines aggregates per-rank activity, sorted by rank.
func (t *Trace) Timelines() []RankTimeline {
	byRank := map[int]*RankTimeline{}
	for _, e := range t.Events {
		tl, ok := byRank[e.Rank]
		if !ok {
			tl = &RankTimeline{Rank: e.Rank, First: e.Start}
			byRank[e.Rank] = tl
		}
		tl.Ops++
		tl.Bytes += e.Length
		tl.BusyTime += e.End - e.Start
		if e.Start < tl.First {
			tl.First = e.Start
		}
		if e.End > tl.Last {
			tl.Last = e.End
		}
	}
	out := make([]RankTimeline, 0, len(byRank))
	for _, tl := range byRank {
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Burst is a contiguous period of elevated I/O activity.
type Burst struct {
	Start, End float64
	Ops        int
	Bytes      int64
}

// Bursts detects I/O bursts: maximal event runs where the gap between
// consecutive operations (in global start order) never exceeds maxGap
// seconds, keeping only runs with at least minOps operations.
func (t *Trace) Bursts(maxGap float64, minOps int) []Burst {
	if len(t.Events) == 0 {
		return nil
	}
	evs := append([]Event(nil), t.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })

	var out []Burst
	cur := Burst{Start: evs[0].Start, End: evs[0].End, Ops: 1, Bytes: evs[0].Length}
	for _, e := range evs[1:] {
		if e.Start-cur.End <= maxGap {
			cur.Ops++
			cur.Bytes += e.Length
			if e.End > cur.End {
				cur.End = e.End
			}
			continue
		}
		if cur.Ops >= minOps {
			out = append(out, cur)
		}
		cur = Burst{Start: e.Start, End: e.End, Ops: 1, Bytes: e.Length}
	}
	if cur.Ops >= minOps {
		out = append(out, cur)
	}
	return out
}

// StragglerRank returns the rank whose busy time most exceeds the mean and
// the ratio of its busy time to the mean (0 when fewer than two ranks).
func (t *Trace) StragglerRank() (rank int, ratio float64) {
	tls := t.Timelines()
	if len(tls) < 2 {
		return 0, 0
	}
	var sum float64
	slowest := tls[0]
	for _, tl := range tls {
		sum += tl.BusyTime
		if tl.BusyTime > slowest.BusyTime {
			slowest = tl
		}
	}
	mean := sum / float64(len(tls))
	if mean <= 0 {
		return slowest.Rank, 0
	}
	return slowest.Rank, slowest.BusyTime / mean
}

// Summary renders a compact temporal description suitable for inclusion in
// a diagnosis prompt: total span, burst structure, and straggler signal.
func (t *Trace) Summary() string {
	var b strings.Builder
	tls := t.Timelines()
	var span float64
	var bytes int64
	for _, tl := range tls {
		if tl.Last > span {
			span = tl.Last
		}
		bytes += tl.Bytes
	}
	fmt.Fprintf(&b, "DXT temporal summary: %d events from %d ranks over %.2f s, %.1f MiB moved.\n",
		len(t.Events), len(tls), span, float64(bytes)/(1<<20))
	bursts := t.Bursts(0.050, 8)
	fmt.Fprintf(&b, "Detected %d I/O burst(s).", len(bursts))
	for i, bu := range bursts {
		if i == 3 {
			b.WriteString(" ...")
			break
		}
		fmt.Fprintf(&b, " Burst %d: %.2f-%.2f s, %d ops, %.1f MiB.",
			i+1, bu.Start, bu.End, bu.Ops, float64(bu.Bytes)/(1<<20))
	}
	b.WriteString("\n")
	if rank, ratio := t.StragglerRank(); ratio > 1.5 {
		fmt.Fprintf(&b, "Rank %d is a straggler: %.1fx the mean per-rank I/O time.\n", rank, ratio)
	}
	return b.String()
}
