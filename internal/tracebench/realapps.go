package tracebench

import (
	"fmt"
	"math/rand"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
)

// realApps builds the 9 Real-Application traces: application-shaped runs
// collected "on production systems", including original/fixed pairs for the
// E2E and OpenPMD pipelines (paper Section V-3).
func realApps() []*Trace {
	home := []darshan.Mount{{Point: "/home", FSType: "nfs"}}
	return []*Trace{
		{
			Name: "ra1-e2e-orig", Source: RealApps,
			Description: "E2E earth-science pipeline, original: small unaligned shared-file record writes",
			Labels: issue.NewSet(issue.SharedFileAccess, issue.SmallWrites, issue.MisalignedWrites,
				issue.NoCollectiveWrite, issue.SmallReads),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 301, NProcs: 8, UsesMPI: true, Exe: "/apps/e2e/pipeline.x", ExtraMounts: home})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 8}
				out := s.OpenShared("/scratch/e2e/records.dat", iosim.POSIX, false, lay)
				for rank := 0; rank < 8; rank++ {
					for k := int64(0); k < 256; k++ {
						out.WriteAt(rank, (k*8+int64(rank))*32768+3, 32000)
					}
				}
				out.Close()
				for rank := 0; rank < 8; rank++ {
					in := s.Open(fmt.Sprintf("/home/e2e/input.%d.csv", rank), rank, iosim.POSIX, nil)
					for k := int64(0); k < 128; k++ {
						in.ReadAt(rank, k*4096, 4096)
					}
					in.Close(rank)
				}
				return s.Finalize()
			},
		},
		{
			Name: "ra2-e2e-fixed", Source: RealApps,
			Description: "E2E pipeline after the fix: collective buffered writes (residual base misalignment)",
			Labels:      issue.NewSet(issue.SharedFileAccess, issue.MisalignedWrites),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 302, NProcs: 8, UsesMPI: true, Exe: "/apps/e2e/pipeline.x", ExtraMounts: home})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 8}
				out := s.OpenShared("/scratch/e2e/records.dat", iosim.MPIColl, true, lay)
				// A 37-byte header shifts every collective round off the
				// stripe boundary: the residual issue the re-collected
				// trace still shows.
				for k := int64(0); k < 8; k++ {
					out.CollectiveWrite(37+k*(8<<20), 1<<20)
				}
				out.Close()
				return s.Finalize()
			},
		},
		{
			Name: "ra3-openpmd-orig", Source: RealApps,
			Description: "OpenPMD particle dumps, original: interleaved small unaligned shared-file I/O",
			Labels: issue.NewSet(issue.SharedFileAccess, issue.SmallWrites, issue.SmallReads,
				issue.MisalignedWrites, issue.MisalignedReads, issue.NoCollectiveWrite, issue.NoCollectiveRead),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 303, NProcs: 8, UsesMPI: true, Exe: "/apps/openpmd/dump.x"})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 8}
				f := s.OpenShared("/scratch/openpmd/particles.h5", iosim.MPIIndep, false, lay)
				for rank := 0; rank < 8; rank++ {
					for k := int64(0); k < 128; k++ {
						f.WriteAt(rank, (k*8+int64(rank))*64000, 64000)
					}
				}
				for rank := 0; rank < 8; rank++ {
					for k := int64(0); k < 128; k++ {
						f.ReadAt(rank, (k*8+int64(rank))*64000, 64000)
					}
				}
				f.Close()
				return s.Finalize()
			},
		},
		{
			Name: "ra4-openpmd-fixed", Source: RealApps,
			Description: "OpenPMD after the fix: stripe-aligned collective chunks",
			Labels:      issue.NewSet(issue.SharedFileAccess),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 304, NProcs: 8, UsesMPI: true, Exe: "/apps/openpmd/dump.x"})
				lay := &iosim.Layout{StripeSize: 4 << 20, StripeWidth: 8}
				f := s.OpenShared("/scratch/openpmd/particles.h5", iosim.MPIColl, true, lay)
				for k := int64(0); k < 8; k++ {
					f.CollectiveWrite(k*(32<<20), 4<<20)
				}
				for k := int64(0); k < 4; k++ {
					f.CollectiveRead(k*(32<<20), 4<<20)
				}
				f.Close()
				return s.Finalize()
			},
		},
		{
			Name: "ra5-dl-ingest", Source: RealApps,
			Description: "deep-learning training ingest: shard enumeration storms plus small random reads",
			Labels: issue.NewSet(issue.HighMetadataLoad, issue.SmallReads, issue.RandomReads,
				issue.NoCollectiveRead, issue.SmallWrites),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 305, NProcs: 8, UsesMPI: true, Exe: "/apps/dl/train.x", ExtraMounts: home})
				rng := rand.New(rand.NewSource(305))
				for rank := 0; rank < 8; rank++ {
					for i := 0; i < 40; i++ {
						f := s.Open(fmt.Sprintf("/home/dataset/shard.%d.%d.rec", rank, i), rank, iosim.POSIX, nil)
						for j := 0; j < 5; j++ {
							f.Stat(rank)
						}
						for j := 0; j < 32; j++ {
							f.ReadAt(rank, 4096*rng.Int63n(128), 4096)
						}
						f.Close(rank)
					}
					w := s.Open(fmt.Sprintf("/home/out/summary.%d.dat", rank), rank, iosim.POSIX, nil)
					for k := int64(0); k < 128; k++ {
						w.WriteAt(rank, k*4096, 4096)
					}
					w.Close(rank)
				}
				return s.Finalize()
			},
		},
		{
			Name: "ra6-montage", Source: RealApps,
			Description: "astronomy mosaic assembler (single process): small unaligned tile I/O on default striping",
			Labels: issue.NewSet(issue.SmallReads, issue.SmallWrites, issue.MisalignedReads,
				issue.MisalignedWrites, issue.ServerImbalance),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 306, NProcs: 1, UsesMPI: false, Exe: "/apps/montage/mosaic.x"})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				in := s.Open("/scratch/montage/tiles.fits", 0, iosim.POSIX, lay)
				out := s.Open("/scratch/montage/mosaic.fits", 0, iosim.POSIX, lay)
				for k := int64(0); k < 512; k++ {
					in.ReadAt(0, k*32768+9, 32000)
					out.WriteAt(0, k*49152+9, 48000)
				}
				in.Close(0)
				out.Close(0)
				return s.Finalize()
			},
		},
		{
			Name: "ra7-qmc-post", Source: RealApps,
			Description: "quantum Monte Carlo post-processor (single process): random unaligned walker updates",
			Labels: issue.NewSet(issue.RandomReads, issue.RandomWrites, issue.MisalignedReads,
				issue.MisalignedWrites, issue.SmallWrites),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 307, NProcs: 1, UsesMPI: false, Exe: "/apps/qmc/post.x"})
				rng := rand.New(rand.NewSource(307))
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 8}
				f := s.Open("/scratch/qmc/walkers.dat", 0, iosim.POSIX, lay)
				for k := 0; k < 96; k++ {
					f.ReadAt(0, (2<<20)*rng.Int63n(64)+13, 2<<20)
					f.WriteAt(0, (2<<20)*rng.Int63n(64)+13, 2<<20)
				}
				f.Close(0)
				obs := s.Open("/scratch/qmc/observables.log", 0, iosim.POSIX, lay)
				for k := int64(0); k < 300; k++ {
					obs.WriteAt(0, rng.Int63n(2<<20)/8*8+5, 4000)
				}
				obs.Close(0)
				return s.Finalize()
			},
		},
		{
			Name: "ra8-nyx-restart", Source: RealApps,
			Description: "cosmology restart: large aligned per-rank reads with one straggling rank",
			Labels:      issue.NewSet(issue.RankImbalance, issue.NoCollectiveRead),
			gen: func() *darshan.Log {
				skew := []float64{1, 1, 1, 1, 1, 5, 1, 1}
				s := iosim.New(iosim.Config{Seed: 308, NProcs: 8, UsesMPI: true, Exe: "/apps/nyx/nyx.x", RankSkew: skew})
				lay := &iosim.Layout{StripeSize: 4 << 20, StripeWidth: 4}
				for rank := 0; rank < 8; rank++ {
					f := s.Open(fmt.Sprintf("/scratch/nyx/chk.%d.bin", rank), rank, iosim.POSIX, lay)
					for k := int64(0); k < 32; k++ {
						f.ReadAt(rank, k*(4<<20), 4<<20)
					}
					f.Close(rank)
				}
				return s.Finalize()
			},
		},
		{
			Name: "ra9-climate-hist", Source: RealApps,
			Description: "climate history writer: metadata churn, small unaligned reads on narrow stripes, random small log writes",
			Labels: issue.NewSet(issue.HighMetadataLoad, issue.SmallReads, issue.MisalignedReads,
				issue.ServerImbalance, issue.NoCollectiveRead, issue.SmallWrites, issue.RandomWrites,
				issue.MisalignedWrites),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 309, NProcs: 8, UsesMPI: true, Exe: "/apps/climate/hist.x"})
				rng := rand.New(rand.NewSource(309))
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				for rank := 0; rank < 8; rank++ {
					for i := 0; i < 80; i++ {
						f := s.Open(fmt.Sprintf("/scratch/hist/cat.%d.%d", rank, i), rank, iosim.POSIX, nil)
						f.Stat(rank)
						f.Stat(rank)
						f.Close(rank)
					}
					in := s.Open(fmt.Sprintf("/scratch/hist/in.%d.nc", rank), rank, iosim.POSIX, lay)
					for k := int64(0); k < 4096; k++ {
						in.ReadAt(rank, k*4096+1024, 4000)
					}
					in.Close(rank)
					log := s.Open(fmt.Sprintf("/scratch/hist/log.%d.dat", rank), rank, iosim.POSIX, lay)
					for k := 0; k < 200; k++ {
						log.WriteAt(rank, rng.Int63n(4<<20)/8*8+5, 4000)
					}
					log.Close(rank)
				}
				return s.Finalize()
			},
		},
	}
}
