package tracebench

import (
	"fmt"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
)

// simpleBench builds the 10 Simple-Bench traces: rudimentary C-style
// programs each targeting specific issue categories. Traces are small with
// low aggregate volume and uniform behavior — the easiest set to diagnose.
func simpleBench() []*Trace {
	return []*Trace{
		{
			Name: "sb01-small-writes", Source: SimpleBench,
			Description: "file-per-process 64 KiB writes on 64 KiB stripes",
			Labels:      issue.NewSet(issue.SmallWrites, issue.ServerImbalance, issue.NoCollectiveWrite),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 101, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/small_write.x"})
				lay := &iosim.Layout{StripeSize: 64 << 10, StripeWidth: 1}
				iosim.FilePerProcessWrite(s, "/scratch/sb01/out.%d.dat", iosim.POSIX, lay, 16<<20, 64<<10)
				return s.Finalize()
			},
		},
		{
			Name: "sb02-small-reads", Source: SimpleBench,
			Description: "file-per-process 64 KiB reads on 64 KiB stripes",
			Labels:      issue.NewSet(issue.SmallReads, issue.ServerImbalance, issue.NoCollectiveRead),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 102, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/small_read.x"})
				lay := &iosim.Layout{StripeSize: 64 << 10, StripeWidth: 1}
				iosim.FilePerProcessRead(s, "/scratch/sb02/in.%d.dat", iosim.POSIX, lay, 16<<20, 64<<10)
				return s.Finalize()
			},
		},
		{
			Name: "sb03-misaligned-writes", Source: SimpleBench,
			Description: "1 MiB writes at offsets shifted off the stripe boundary",
			Labels:      issue.NewSet(issue.MisalignedWrites, issue.ServerImbalance, issue.NoCollectiveWrite),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 103, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/misaligned_write.x"})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				for rank := 0; rank < 4; rank++ {
					f := s.Open(fmt.Sprintf("/scratch/sb03/out.%d.dat", rank), rank, iosim.POSIX, lay)
					for k := int64(0); k < 32; k++ {
						f.WriteAt(rank, k*(1<<20)+17, 1<<20)
					}
					f.Close(rank)
				}
				return s.Finalize()
			},
		},
		{
			Name: "sb04-misaligned-reads", Source: SimpleBench,
			Description: "1 MiB reads at offsets shifted off the stripe boundary",
			Labels:      issue.NewSet(issue.MisalignedReads, issue.ServerImbalance, issue.NoCollectiveRead),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 104, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/misaligned_read.x"})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				for rank := 0; rank < 4; rank++ {
					f := s.Open(fmt.Sprintf("/scratch/sb04/in.%d.dat", rank), rank, iosim.POSIX, lay)
					for k := int64(0); k < 32; k++ {
						f.ReadAt(rank, k*(1<<20)+17, 1<<20)
					}
					f.Close(rank)
				}
				return s.Finalize()
			},
		},
		{
			Name: "sb05-metadata-storm", Source: SimpleBench,
			Description: "open/stat churn over many small files plus uncoordinated reads",
			Labels:      issue.NewSet(issue.HighMetadataLoad, issue.NoCollectiveRead),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 105, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/meta_storm.x"})
				for rank := 0; rank < 4; rank++ {
					for i := 0; i < 75; i++ {
						f := s.Open(fmt.Sprintf("/scratch/sb05/part.%d.%d", rank, i), rank, iosim.POSIX, nil)
						f.Stat(rank)
						f.Stat(rank)
						f.Stat(rank)
						f.ReadAt(rank, 0, 1<<20)
						f.Close(rank)
					}
				}
				return s.Finalize()
			},
		},
		{
			Name: "sb06-repetitive-read", Source: SimpleBench,
			Description: "re-reads the same 8 MiB input four times, then writes results",
			Labels:      issue.NewSet(issue.RepetitiveReads, issue.ServerImbalance, issue.NoCollectiveRead, issue.NoCollectiveWrite),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 106, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/reread.x"})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				for rank := 0; rank < 4; rank++ {
					in := s.Open(fmt.Sprintf("/scratch/sb06/in.%d.dat", rank), rank, iosim.POSIX, lay)
					for pass := 0; pass < 4; pass++ {
						for k := int64(0); k < 8; k++ {
							in.ReadAt(rank, k*(1<<20), 1<<20)
						}
					}
					in.Close(rank)
					out := s.Open(fmt.Sprintf("/scratch/sb06/out.%d.dat", rank), rank, iosim.POSIX, lay)
					for k := int64(0); k < 4; k++ {
						out.WriteAt(rank, k*(4<<20), 4<<20)
					}
					out.Close(rank)
				}
				return s.Finalize()
			},
		},
		{
			Name: "sb07-rank-imbalance", Source: SimpleBench,
			Description: "shared-file I/O with one straggling rank",
			Labels: issue.NewSet(issue.RankImbalance, issue.SharedFileAccess, issue.ServerImbalance,
				issue.NoCollectiveRead, issue.NoCollectiveWrite),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 107, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/straggler.x",
					RankSkew: []float64{1, 1, 1, 6}})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				f := s.OpenShared("/scratch/sb07/shared.dat", iosim.POSIX, false, lay)
				for rank := 0; rank < 4; rank++ {
					base := int64(rank) * (16 << 20)
					for k := int64(0); k < 4; k++ {
						f.WriteAt(rank, base+k*(4<<20), 4<<20)
					}
				}
				for rank := 0; rank < 4; rank++ {
					base := int64(rank) * (16 << 20)
					for k := int64(0); k < 4; k++ {
						f.ReadAt(rank, base+k*(4<<20), 4<<20)
					}
				}
				f.Close()
				return s.Finalize()
			},
		},
		{
			Name: "sb08-stdio-writes", Source: SimpleBench,
			Description: "bulk output through buffered fwrite",
			Labels:      issue.NewSet(issue.LowLevelLibWrite),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 108, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/stdio_write.x"})
				f := s.Open("/scratch/sb08/log.dat", 0, iosim.STDIO, nil)
				for k := int64(0); k < 32; k++ {
					f.WriteAt(0, k*(1<<20), 1<<20)
				}
				f.Close(0)
				return s.Finalize()
			},
		},
		{
			Name: "sb09-stdio-reads", Source: SimpleBench,
			Description: "bulk input through buffered fread",
			Labels:      issue.NewSet(issue.LowLevelLibRead),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 109, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/stdio_read.x"})
				f := s.Open("/scratch/sb09/in.dat", 0, iosim.STDIO, nil)
				for k := int64(0); k < 32; k++ {
					f.ReadAt(0, k*(1<<20), 1<<20)
				}
				f.Close(0)
				return s.Finalize()
			},
		},
		{
			Name: "sb10-small-unaligned-rw", Source: SimpleBench,
			Description: "small unaligned reads and writes combined",
			Labels: issue.NewSet(issue.SmallReads, issue.SmallWrites, issue.MisalignedReads,
				issue.MisalignedWrites, issue.ServerImbalance, issue.NoCollectiveRead, issue.NoCollectiveWrite),
			gen: func() *darshan.Log {
				s := iosim.New(iosim.Config{Seed: 110, NProcs: 4, UsesMPI: true, Exe: "/bench/sb/combined.x"})
				lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
				for rank := 0; rank < 4; rank++ {
					in := s.Open(fmt.Sprintf("/scratch/sb10/in.%d.dat", rank), rank, iosim.POSIX, lay)
					out := s.Open(fmt.Sprintf("/scratch/sb10/out.%d.dat", rank), rank, iosim.POSIX, lay)
					for k := int64(0); k < 512; k++ {
						in.ReadAt(rank, k*16384+7, 16000)
						out.WriteAt(rank, k*16384+7, 16000)
					}
					in.Close(rank)
					out.Close(rank)
				}
				return s.Finalize()
			},
		},
	}
}
