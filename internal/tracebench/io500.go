package tracebench

import (
	"fmt"
	"math/rand"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
)

// io500 builds the 21 IO500-configuration traces. Each configuration tunes
// the benchmark's workloads (ior-easy, ior-hard, mdtest, randomized ior) to
// induce specific sub-optimal patterns; many traces exhibit several
// overlapping issues (paper Section V-2).
func io500() []*Trace {
	var out []*Trace

	// Group A (6): ior-hard without MPI — shared file, small unaligned
	// interleaved transfers, default narrow striping, plain POSIX
	// processes launched without MPI.
	hardNoMPI := issue.NewSet(issue.SharedFileAccess, issue.SmallReads, issue.SmallWrites,
		issue.MisalignedReads, issue.MisalignedWrites, issue.ServerImbalance, issue.MultiProcessNoMPI)
	for i, xfer := range []int64{47008, 4096, 64000, 8000, 100000, 23504} {
		seed := int64(200 + i)
		nprocs := 8
		iters := hardIters(nprocs, xfer)
		x := xfer
		out = append(out, &Trace{
			Name:   fmt.Sprintf("io500-%02d-ior-hard-nompi-%db", i+1, x),
			Source: IO500,
			Description: fmt.Sprintf("ior-hard: %d-byte interleaved shared-file transfers, POSIX, no MPI, stripe 1x1MiB",
				x),
			Labels: hardNoMPI,
			gen: func() *darshan.Log {
				return genIORHard(seed, nprocs, x, iters, false)
			},
		})
	}

	// Group B (4): ior-hard through independent MPI-IO — same pattern but
	// the job is MPI and issues independent (non-collective) operations.
	hardMPI := issue.NewSet(issue.SharedFileAccess, issue.SmallReads, issue.SmallWrites,
		issue.MisalignedReads, issue.MisalignedWrites, issue.ServerImbalance,
		issue.NoCollectiveRead, issue.NoCollectiveWrite)
	for i, xfer := range []int64{47008, 8192, 32000, 120000} {
		seed := int64(210 + i)
		x := xfer
		out = append(out, &Trace{
			Name:   fmt.Sprintf("io500-%02d-ior-hard-indep-%db", 7+i, x),
			Source: IO500,
			Description: fmt.Sprintf("ior-hard: %d-byte interleaved shared-file transfers via independent MPI-IO, stripe 1x1MiB",
				x),
			Labels: hardMPI,
			gen: func() *darshan.Log {
				return genIORHard(seed, 8, x, hardIters(8, x), true)
			},
		})
	}

	// Group C (5): randomized ior without MPI — file-per-process, large
	// aligned transfers at random offsets, narrow striping.
	randomSet := issue.NewSet(issue.RandomReads, issue.RandomWrites, issue.ServerImbalance, issue.MultiProcessNoMPI)
	for i := 0; i < 5; i++ {
		seed := int64(220 + i)
		idx := i
		out = append(out, &Trace{
			Name:        fmt.Sprintf("io500-%02d-ior-random-%d", 11+i, idx),
			Source:      IO500,
			Description: "randomized ior: 1 MiB transfers at random aligned offsets, file per process, no MPI, stripe 1x1MiB",
			Labels:      randomSet,
			gen: func() *darshan.Log {
				return genIORRandom(seed, 8, 1<<20, 64, 64<<20)
			},
		})
	}

	// Group D (2): mdtest — pure metadata storms from non-MPI processes.
	mdSet := issue.NewSet(issue.HighMetadataLoad, issue.MultiProcessNoMPI)
	for i, files := range []int{120, 200} {
		seed := int64(230 + i)
		n := files
		out = append(out, &Trace{
			Name:        fmt.Sprintf("io500-%02d-mdtest-%df", 16+i, n),
			Source:      IO500,
			Description: fmt.Sprintf("mdtest: %d file creates/stats per process, no MPI", n),
			Labels:      mdSet,
			gen: func() *darshan.Log {
				return genMdtest(seed, 8, n)
			},
		})
	}

	// Group E (4): ior-easy through independent MPI-IO on a shared file —
	// large aligned transfers and wide striping, but still no collectives.
	easySet := issue.NewSet(issue.SharedFileAccess, issue.NoCollectiveRead, issue.NoCollectiveWrite)
	for i, xfer := range []int64{8 << 20, 4 << 20, 16 << 20, 2 << 20} {
		seed := int64(240 + i)
		x := xfer
		out = append(out, &Trace{
			Name:   fmt.Sprintf("io500-%02d-ior-easy-indep-%dmb", 18+i, x>>20),
			Source: IO500,
			Description: fmt.Sprintf("ior-easy: %d MiB shared-file transfers via independent MPI-IO, stripe 8x1MiB",
				x>>20),
			Labels: easySet,
			gen: func() *darshan.Log {
				return genIOREasyShared(seed, 8, x, 8)
			},
		})
	}

	return out
}

// hardIters picks an iteration count so every ior-hard configuration moves
// enough data for its labels: the shared file's extent must exceed four
// stripe units (Server Load Imbalance) and each direction must exceed the
// collective-relevance volume floor.
func hardIters(nprocs int, xfer int64) int64 {
	const targetBytes = 9 << 20
	iters := targetBytes / (int64(nprocs) * xfer)
	if iters < 96 {
		iters = 96
	}
	return iters
}

// genIORHard models ior-hard: every rank writes then reads xfer-byte
// records interleaved with all other ranks into one shared file.
func genIORHard(seed int64, nprocs int, xfer, iters int64, mpi bool) *darshan.Log {
	s := iosim.New(iosim.Config{Seed: seed, NProcs: nprocs, UsesMPI: mpi, Exe: "/bench/io500/ior"})
	lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
	iface := iosim.POSIX
	if mpi {
		iface = iosim.MPIIndep
	}
	f := s.OpenShared("/scratch/io500/ior-hard.dat", iface, false, lay)
	for rank := 0; rank < nprocs; rank++ {
		for k := int64(0); k < iters; k++ {
			off := (k*int64(nprocs) + int64(rank)) * xfer
			f.WriteAt(rank, off, xfer)
		}
	}
	for rank := 0; rank < nprocs; rank++ {
		for k := int64(0); k < iters; k++ {
			off := (k*int64(nprocs) + int64(rank)) * xfer
			f.ReadAt(rank, off, xfer)
		}
	}
	f.Close()
	return s.Finalize()
}

// genIORRandom models a randomized ior run: file-per-process, size-aligned
// random offsets, both phases.
func genIORRandom(seed int64, nprocs int, xfer int64, ops int, extent int64) *darshan.Log {
	s := iosim.New(iosim.Config{Seed: seed, NProcs: nprocs, UsesMPI: false, Exe: "/bench/io500/ior"})
	rng := rand.New(rand.NewSource(seed * 7))
	lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
	slots := extent / xfer
	for rank := 0; rank < nprocs; rank++ {
		f := s.Open(fmt.Sprintf("/scratch/io500/ior-rand.%d.dat", rank), rank, iosim.POSIX, lay)
		for k := 0; k < ops; k++ {
			f.WriteAt(rank, xfer*rng.Int63n(slots), xfer)
		}
		for k := 0; k < ops; k++ {
			f.ReadAt(rank, xfer*rng.Int63n(slots), xfer)
		}
		f.Close(rank)
	}
	return s.Finalize()
}

// genMdtest models mdtest: per-process file create/stat/close storms with
// no data movement.
func genMdtest(seed int64, nprocs, filesPerProc int) *darshan.Log {
	s := iosim.New(iosim.Config{Seed: seed, NProcs: nprocs, UsesMPI: false, Exe: "/bench/io500/mdtest"})
	for rank := 0; rank < nprocs; rank++ {
		for i := 0; i < filesPerProc; i++ {
			f := s.Open(fmt.Sprintf("/scratch/io500/md/%d/f.%d", rank, i), rank, iosim.POSIX, nil)
			f.Stat(rank)
			f.Stat(rank)
			f.Close(rank)
		}
	}
	return s.Finalize()
}

// genIOREasyShared models ior-easy onto one shared file via independent
// MPI-IO: block-partitioned large aligned transfers, wide striping.
func genIOREasyShared(seed int64, nprocs int, xfer int64, width int) *darshan.Log {
	s := iosim.New(iosim.Config{Seed: seed, NProcs: nprocs, UsesMPI: true, Exe: "/bench/io500/ior"})
	lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: width}
	f := s.OpenShared("/scratch/io500/ior-easy.dat", iosim.MPIIndep, false, lay)
	perRank := 4 * xfer
	for rank := 0; rank < nprocs; rank++ {
		base := int64(rank) * perRank
		for off := int64(0); off < perRank; off += xfer {
			f.WriteAt(rank, base+off, xfer)
		}
	}
	for rank := 0; rank < nprocs; rank++ {
		base := int64(rank) * perRank
		for off := int64(0); off < perRank; off += xfer {
			f.ReadAt(rank, base+off, xfer)
		}
	}
	f.Close()
	return s.Finalize()
}
