package tracebench

import (
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 40 {
		t.Fatalf("suite has %d traces, want 40", len(suite))
	}
	counts := map[string]int{}
	for _, tr := range suite {
		counts[tr.Source]++
		if len(tr.Labels) == 0 {
			t.Errorf("trace %s has no labels", tr.Name)
		}
		if tr.Name == "" || tr.Description == "" {
			t.Errorf("trace %+v missing name/description", tr)
		}
	}
	if counts[SimpleBench] != 10 || counts[IO500] != 21 || counts[RealApps] != 9 {
		t.Errorf("source counts = %v, want 10/21/9", counts)
	}
}

// TestTableIIICounts pins the per-source label counts to the paper's
// Table III exactly.
func TestTableIIICounts(t *testing.T) {
	want := map[issue.Label][3]int{ // SB, IO500, RA
		issue.HighMetadataLoad:  {1, 2, 2},
		issue.MisalignedReads:   {2, 10, 4},
		issue.MisalignedWrites:  {2, 10, 6},
		issue.RandomWrites:      {0, 5, 2},
		issue.RandomReads:       {0, 5, 2},
		issue.SharedFileAccess:  {1, 14, 4},
		issue.SmallReads:        {2, 10, 5},
		issue.SmallWrites:       {2, 10, 6},
		issue.RepetitiveReads:   {1, 0, 0},
		issue.ServerImbalance:   {7, 15, 2},
		issue.RankImbalance:     {1, 0, 1},
		issue.MultiProcessNoMPI: {0, 13, 0},
		issue.NoCollectiveRead:  {6, 8, 4},
		issue.NoCollectiveWrite: {5, 8, 2},
		issue.LowLevelLibRead:   {1, 0, 0},
		issue.LowLevelLibWrite:  {1, 0, 0},
	}
	suite := Suite()
	got := LabelCounts(suite)
	for label, w := range want {
		g := got[label]
		if g[SimpleBench] != w[0] || g[IO500] != w[1] || g[RealApps] != w[2] {
			t.Errorf("%-34s SB/IO500/RA = %d/%d/%d, want %d/%d/%d",
				label, g[SimpleBench], g[IO500], g[RealApps], w[0], w[1], w[2])
		}
	}
	if total := TotalIssues(suite); total != 182 {
		t.Errorf("total issues = %d, want 182", total)
	}
}

// TestGroundTruthConsistency verifies that each trace's labels are exactly
// what the ideal expert derives from the full trace text: the benchmark is
// solvable, and no trace exhibits unlabeled issues.
func TestGroundTruthConsistency(t *testing.T) {
	for _, tr := range Suite() {
		tr := tr
		t.Run(tr.Name, func(t *testing.T) {
			text, err := darshan.TextString(tr.Log())
			if err != nil {
				t.Fatalf("render: %v", err)
			}
			got := llm.ExpertLabels(text)
			for l := range tr.Labels {
				if !got[l] {
					t.Errorf("labeled issue %q not derivable from trace", l)
				}
			}
			for l := range got {
				if !tr.Labels[l] {
					t.Errorf("trace exhibits unlabeled issue %q", l)
				}
			}
		})
	}
}

func TestTracesValidateAndRoundTrip(t *testing.T) {
	for _, tr := range Suite() {
		log := tr.Log()
		if err := log.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
		if log.Job.NProcs < 1 {
			t.Errorf("%s: bad nprocs", tr.Name)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Suite()
	b := Suite()
	for i := range a {
		ta, _ := darshan.TextString(a[i].Log())
		tb, _ := darshan.TextString(b[i].Log())
		if ta != tb {
			t.Errorf("trace %s not deterministic", a[i].Name)
		}
	}
}

func TestBySource(t *testing.T) {
	suite := Suite()
	if got := len(BySource(suite, IO500)); got != 21 {
		t.Errorf("BySource(IO500) = %d", got)
	}
	if got := len(BySource(suite, "nope")); got != 0 {
		t.Errorf("BySource(nope) = %d", got)
	}
}
