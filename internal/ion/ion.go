// Package ion reimplements the ION baseline (Egersdoerfer et al.,
// HotStorage 2024): a proof-of-concept that queries a large language model
// directly with an engineered prompt wrapped around the full parsed Darshan
// trace. ION inherits the raw model's limitations — the whole trace must
// fit the context window (it usually does not, triggering lost-in-the-
// middle truncation), no external knowledge grounds the answer, and
// popular misconceptions surface unchecked. The paper uses ION as the
// "naive LLM" baseline IOAgent is measured against.
package ion

import (
	"fmt"
	"sync"

	"ioagent/internal/darshan"
	"ioagent/internal/llm"
)

// Diagnoser queries one model with a single engineered prompt per trace.
type Diagnoser struct {
	client llm.Client
	model  string

	mu    sync.Mutex
	usage llm.Usage
	cost  float64
}

// New builds an ION diagnoser (default model gpt-4o-sim, as the paper's
// evaluation configures it).
func New(client llm.Client, model string) *Diagnoser {
	if model == "" {
		model = llm.GPT4o
	}
	return &Diagnoser{client: client, model: model}
}

// promptHeader is the engineered instruction block (condensed from ION's
// published prompt).
const promptHeader = `You are an expert in high-performance computing I/O performance analysis.
Below is the full content of a Darshan trace log in darshan-parser text format.
Analyze the trace and identify any I/O performance issues the application exhibits.
For every issue, justify it with concrete values from the trace and recommend a fix.

`

// Diagnose runs the one-shot analysis.
func (d *Diagnoser) Diagnose(log *darshan.Log) (string, error) {
	text, err := darshan.TextString(log)
	if err != nil {
		return "", fmt.Errorf("ion: render trace: %w", err)
	}
	resp, err := d.client.Complete(llm.Prompt(d.model, promptHeader+text))
	if err != nil {
		return "", fmt.Errorf("ion: %w", err)
	}
	d.mu.Lock()
	d.usage.PromptTokens += resp.Usage.PromptTokens
	d.usage.CompletionTokens += resp.Usage.CompletionTokens
	d.cost += resp.CostUSD
	d.mu.Unlock()
	return resp.Content, nil
}

// Stats reports accumulated usage.
func (d *Diagnoser) Stats() (llm.Usage, float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usage, d.cost
}
