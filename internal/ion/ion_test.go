package ion

import (
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

func smallLog() *darshan.Log {
	s := iosim.New(iosim.Config{Seed: 10, NProcs: 4, UsesMPI: true})
	f := s.OpenShared("/scratch/x.dat", iosim.MPIIndep, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 100; i++ {
			f.WriteAt(rank, (int64(rank)*100+i)*8192, 8192)
		}
	}
	return s.Finalize()
}

func bigLog() *darshan.Log {
	s := iosim.New(iosim.Config{Seed: 11, NProcs: 8, UsesMPI: true})
	// Many files -> a long parsed trace that exceeds the context window.
	iosim.FilePerProcessWrite(s, "/scratch/out.%04d.dat", iosim.POSIX, nil, 4<<20, 256<<10)
	for i := 0; i < 120; i++ {
		f := s.Open(pathN(i), i%8, iosim.POSIX, nil)
		f.WriteAt(i%8, 0, 128<<10)
		f.Close(i % 8)
	}
	f := s.OpenShared("/scratch/shared.out", iosim.MPIIndep, false, nil)
	for rank := 0; rank < 8; rank++ {
		f.WriteAt(rank, int64(rank)*(4<<20), 4<<20)
	}
	return s.Finalize()
}

func pathN(i int) string {
	return "/scratch/aux." + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10)) + ".dat"
}

func TestIONFindsIssuesOnSmallTrace(t *testing.T) {
	d := New(llm.NewSim(), "")
	out, err := d.Diagnose(smallLog())
	if err != nil {
		t.Fatal(err)
	}
	labels := llm.ClaimedLabels(out)
	if !labels[issue.SmallWrites] {
		t.Errorf("ION should find small writes on a short trace; got %v", labels.Sorted())
	}
	usage, cost := d.Stats()
	if usage.Total() == 0 || cost <= 0 {
		t.Error("usage/cost accounting broken")
	}
}

func TestIONNeverCitesSources(t *testing.T) {
	d := New(llm.NewSim(), "")
	out, err := d.Diagnose(smallLog())
	if err != nil {
		t.Fatal(err)
	}
	if refs := llm.ParseReport(out).AllRefs(); len(refs) != 0 {
		t.Errorf("ION has no RAG; it must not cite sources, got %v", refs)
	}
}

func TestIONTruncatesOnBigTrace(t *testing.T) {
	log := bigLog()
	text, err := darshan.TextString(log)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := llm.LookupModel(llm.GPT4o)
	if llm.CountTokens(text) <= spec.ContextWindow {
		t.Skipf("trace only %d tokens; enlarge the workload", llm.CountTokens(text))
	}
	d := New(llm.NewSim(), "")
	out, err := d.Diagnose(log)
	if err != nil {
		t.Fatal(err)
	}
	// The shared-file no-collective issue sits mid-trace; ION should
	// tend to miss it due to truncation. We only require that ION finds
	// strictly fewer issues than the trace carries.
	labels := llm.ClaimedLabels(out)
	if labels[issue.NoCollectiveWrite] && labels[issue.ServerImbalance] && labels[issue.RankImbalance] {
		t.Errorf("ION found every cross-module issue despite truncation: %v", labels.Sorted())
	}
}
