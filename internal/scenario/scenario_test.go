package scenario

import (
	"bytes"
	"math/rand"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
	"ioagent/internal/dxt"
	"ioagent/internal/eval"
	"ioagent/internal/fleet/ingest"
	"ioagent/internal/ioagent"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

// TestMatrixDeterministic: Build is a pure function — two renderings of a
// scenario are byte-identical and share one content address.
func TestMatrixDeterministic(t *testing.T) {
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			w1, l1 := sc.Build()
			w2, l2 := sc.Build()
			if !bytes.Equal(w1, w2) {
				t.Fatalf("wire bytes differ across builds (%d vs %d bytes)", len(w1), len(w2))
			}
			d1, err := darshan.ContentDigest(l1)
			if err != nil {
				t.Fatalf("digest: %v", err)
			}
			d2, err := darshan.ContentDigest(l2)
			if err != nil {
				t.Fatalf("digest: %v", err)
			}
			if d1 != d2 {
				t.Fatalf("content digests differ across builds: %s vs %s", d1, d2)
			}
		})
	}
}

// TestMatrixIngestDigest: the wire bytes, streamed through the fleet's
// chunked ingest parser at adversarial chunk sizes, must land on exactly
// the content address of the scenario's decoded log. This is the
// end-to-end statement that ingest sniffing (binary vs darshan text vs
// DXT text) routes each modality to the right parser and that digests
// are rendering-canonical.
func TestMatrixIngestDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			wire, log := sc.Build()
			want, err := darshan.ContentDigest(log)
			if err != nil {
				t.Fatalf("digest: %v", err)
			}
			for trial := 0; trial < 3; trial++ {
				p := ingest.NewParser(int64(len(wire)) + 1024)
				for off := 0; off < len(wire); {
					n := 1 + rng.Intn(257)
					if off+n > len(wire) {
						n = len(wire) - off
					}
					if _, err := p.Write(wire[off : off+n]); err != nil {
						t.Fatalf("chunked write at %d: %v", off, err)
					}
					off += n
				}
				_, got, err := p.Finish()
				if err != nil {
					t.Fatalf("finish: %v", err)
				}
				if got != want {
					t.Fatalf("ingest digest %s != log digest %s", got, want)
				}
				if sc.Modality == "dxt" && !p.Stats().DXT {
					t.Fatalf("ingest did not sniff the wire as DXT")
				}
			}
		})
	}
}

// TestMatrixLabels: every scenario triggers exactly its committed drishti
// label set — the machine-checkable ground truth fleetbench scores
// diagnoses against. A drishti or derivation change that shifts any set
// fails here, which is the point: the matrix is the regression fence.
func TestMatrixLabels(t *testing.T) {
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			_, log := sc.Build()
			got := drishti.Analyze(log).Labels()
			if !setsEqual(got, sc.Expected) {
				t.Fatalf("drishti labels = %v, committed expected = %v",
					got.Sorted(), sc.Expected.Sorted())
			}
		})
	}
}

// TestMatrixModalityContract: the darshan and DXT renderings of the
// metadata storm must disagree on HighMetadataLoad — metadata operations
// are invisible in the per-operation stream — while agreeing on the
// workload's data-path labels. This pins the modality contract
// ARCHITECTURE.md layer 10 documents.
func TestMatrixModalityContract(t *testing.T) {
	darshanSide := ByName("metadata-storm").Expected
	dxtSide := ByName("metadata-storm-dxt").Expected
	if !darshanSide[issue.HighMetadataLoad] {
		t.Fatal("darshan metadata storm must expect High Metadata Load")
	}
	if dxtSide[issue.HighMetadataLoad] {
		t.Fatal("DXT metadata storm must NOT expect High Metadata Load: metadata ops are invisible in DXT")
	}
	if !dxtSide[issue.SmallWrites] {
		t.Fatal("DXT metadata storm must still expect the data-path labels")
	}
}

// TestMatrixDiagnosisScores: a diagnosis produced by the agent under the
// deterministic sim LLM must score at or above each scenario's committed
// baseline on the eval.ScoreDiagnosis scale.
func TestMatrixDiagnosisScores(t *testing.T) {
	client := llm.NewSim()
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			_, log := sc.Build()
			agent := ioagent.New(client, ioagent.Options{})
			res, err := agent.Diagnose(log)
			if err != nil {
				t.Fatalf("diagnose: %v", err)
			}
			score, err := eval.ScoreDiagnosis(client, "", sc.Expected, res.Text)
			if err != nil {
				t.Fatalf("score: %v", err)
			}
			if score < sc.Baseline {
				t.Fatalf("diagnosis score %.3f below committed baseline %.3f", score, sc.Baseline)
			}
		})
	}
}

// TestDXTRenderingCanonicalDigest: for every DXT scenario, three distinct
// renderings of the trace — the text wire, the in-memory derived log, and
// a binary encode/decode round trip — must share one content address.
func TestDXTRenderingCanonicalDigest(t *testing.T) {
	for _, sc := range Matrix() {
		if sc.Modality != "dxt" {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			wire, log := sc.Build()
			want, err := darshan.ContentDigest(log)
			if err != nil {
				t.Fatalf("digest: %v", err)
			}

			// Text rendering → parse → derive.
			tr, err := dxt.ParseText(bytes.NewReader(wire))
			if err != nil {
				t.Fatalf("parse text wire: %v", err)
			}
			fromText, err := darshan.ContentDigest(darshan.FromDXT(tr))
			if err != nil {
				t.Fatalf("digest from text: %v", err)
			}
			if fromText != want {
				t.Fatalf("text-rendering digest %s != log digest %s", fromText, want)
			}

			// Binary rendering (v3 section with the event stream) → decode.
			var buf bytes.Buffer
			if err := darshan.Encode(&buf, log); err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, err := darshan.Decode(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if dec.DXT == nil {
				t.Fatal("binary round trip dropped the DXT event stream")
			}
			fromBinary, err := darshan.ContentDigest(dec)
			if err != nil {
				t.Fatalf("digest from binary: %v", err)
			}
			if fromBinary != want {
				t.Fatalf("binary-rendering digest %s != log digest %s", fromBinary, want)
			}
		})
	}
}

func setsEqual(a, b issue.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		if !b[l] {
			return false
		}
	}
	return true
}
