// Package scenario generates the deterministic adversarial trace matrix
// the fleet's diagnosis quality is scored against. Each scenario is one
// iosim workload engineered to exhibit a known I/O pathology — tiny
// unaligned writes, a metadata storm, shared-file contention, straggler
// ranks — rendered in one of the two trace modalities the fleet ingests:
//
//   - "darshan": the aggregate-counter log, binary-encoded;
//   - "dxt": the per-operation extended-tracing text rendering, whose
//     counter view is derived by darshan.FromDXT.
//
// A scenario carries machine-checkable ground truth: the exact drishti
// label set its canonical log must trigger (Expected) and a committed
// minimum diagnosis score (Baseline) on the eval.ScoreDiagnosis scale.
// The expected sets differ per modality by design — DXT traces carry no
// metadata operations, so a metadata storm is invisible in the DXT
// rendering while its tiny-write component still shows — which is the
// modality contract ARCHITECTURE.md layer 10 documents.
//
// Everything here is deterministic: fixed simulator seeds, fixed
// workload shapes. TestScenarioMatrix (run under -race in CI) and
// cmd/fleetbench both consume this matrix; a drishti, derivation, or
// pipeline change that shifts a scenario's labels or score below its
// committed values fails the build.
package scenario

import (
	"bytes"
	"log"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
)

// Scenario is one adversarial workload in one trace modality.
type Scenario struct {
	// Name identifies the scenario ("shared-file-contention-dxt").
	Name string
	// Modality is "darshan" (counter log) or "dxt" (per-operation text).
	Modality string
	// Expected is the exact drishti label set the scenario's canonical
	// log triggers — the machine-checkable ground truth.
	Expected issue.Set
	// Baseline is the committed minimum eval.ScoreDiagnosis verdict for
	// the fleet's diagnosis of this scenario; CI fails below it.
	Baseline float64
	// Build renders the scenario: the wire bytes a client would submit
	// (binary darshan or DXT text) and the decoded log they parse to.
	// Deterministic: every call yields identical bytes.
	Build func() (wire []byte, log *darshan.Log)
}

// Matrix returns the full scored scenario matrix, darshan scenarios
// first, then their DXT-rendered variants.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name:     "tiny-unaligned-writes",
			Modality: "darshan",
			Expected: issue.NewSet(issue.SmallWrites, issue.MisalignedWrites),
			Baseline: 0.80,
			Build:    func() ([]byte, *darshan.Log) { return renderDarshan(tinyUnalignedWrites(false)) },
		},
		{
			Name:     "metadata-storm",
			Modality: "darshan",
			Expected: issue.NewSet(issue.HighMetadataLoad, issue.SmallWrites, issue.MisalignedWrites, issue.RandomWrites),
			Baseline: 0.85,
			Build:    func() ([]byte, *darshan.Log) { return renderDarshan(metadataStorm(false)) },
		},
		{
			Name:     "shared-file-contention",
			Modality: "darshan",
			Expected: issue.NewSet(issue.SharedFileAccess, issue.ServerImbalance),
			Baseline: 0.80,
			Build:    func() ([]byte, *darshan.Log) { return renderDarshan(sharedFileContention(false)) },
		},
		{
			Name:     "straggler-ranks",
			Modality: "darshan",
			Expected: issue.NewSet(issue.RankImbalance, issue.SharedFileAccess, issue.ServerImbalance),
			Baseline: 0.80,
			Build:    func() ([]byte, *darshan.Log) { return renderDarshan(stragglerRanks(false)) },
		},
		{
			// MisalignedWrites rides along in a read-only trace because
			// drishti's T07 heuristic cannot attribute the shared
			// POSIX_FILE_NOT_ALIGNED counter to a direction.
			Name:     "small-read-storm",
			Modality: "darshan",
			Expected: issue.NewSet(issue.SmallReads, issue.MisalignedReads, issue.MisalignedWrites, issue.RandomReads, issue.SharedFileAccess, issue.ServerImbalance),
			Baseline: 0.80,
			Build:    func() ([]byte, *darshan.Log) { return renderDarshan(smallReadStorm(false)) },
		},
		{
			Name:     "tiny-unaligned-writes-dxt",
			Modality: "dxt",
			Expected: issue.NewSet(issue.SmallWrites, issue.MisalignedWrites),
			Baseline: 0.80,
			Build:    func() ([]byte, *darshan.Log) { return renderDXT(tinyUnalignedWrites(true)) },
		},
		{
			// The storm's stat/open traffic does not exist in the DXT
			// event stream: only the tiny-write component survives the
			// modality change, so HighMetadataLoad is NOT expected here.
			Name:     "metadata-storm-dxt",
			Modality: "dxt",
			Expected: issue.NewSet(issue.SmallWrites, issue.MisalignedWrites, issue.RandomWrites),
			Baseline: 0.55,
			Build:    func() ([]byte, *darshan.Log) { return renderDXT(metadataStorm(true)) },
		},
		{
			Name:     "shared-file-contention-dxt",
			Modality: "dxt",
			Expected: issue.NewSet(issue.SharedFileAccess),
			Baseline: 0.75,
			Build:    func() ([]byte, *darshan.Log) { return renderDXT(sharedFileContention(true)) },
		},
		{
			// The DXT rendering loses the per-server distribution, so
			// ServerImbalance is NOT expected here; the data-path labels
			// (including T07's direction-blind misalignment pair) survive.
			Name:     "small-read-storm-dxt",
			Modality: "dxt",
			Expected: issue.NewSet(issue.SmallReads, issue.MisalignedReads, issue.MisalignedWrites, issue.RandomReads, issue.SharedFileAccess),
			Baseline: 0.75,
			Build:    func() ([]byte, *darshan.Log) { return renderDXT(smallReadStorm(true)) },
		},
		{
			Name:     "straggler-ranks-dxt",
			Modality: "dxt",
			Expected: issue.NewSet(issue.RankImbalance, issue.SharedFileAccess),
			Baseline: 0.70,
			Build:    func() ([]byte, *darshan.Log) { return renderDXT(stragglerRanks(true)) },
		},
	}
}

// ByName returns the named scenario; it panics on unknown names (the
// matrix is a compile-time artifact, a typo is a programming error).
func ByName(name string) Scenario {
	for _, sc := range Matrix() {
		if sc.Name == name {
			return sc
		}
	}
	panic("scenario: unknown scenario " + name)
}

// renderDarshan encodes the simulated log in the binary rendering.
func renderDarshan(s *iosim.Sim) ([]byte, *darshan.Log) {
	l := s.Finalize()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, l); err != nil {
		log.Panicf("scenario: encode: %v", err) // deterministic inputs; cannot fail
	}
	return buf.Bytes(), l
}

// renderDXT renders the simulated per-operation stream as DXT text and
// derives its counter view, exactly as ingest will.
func renderDXT(s *iosim.Sim) ([]byte, *darshan.Log) {
	s.Finalize() // settle the simulation clock; the counter log is discarded
	t := s.DXT()
	return []byte(dxt.TextString(t)), darshan.FromDXT(t)
}

// tinyUnalignedWrites: every rank streams its own file in 3000-byte
// transfers — far below both the 1 MB "small" threshold and any block
// boundary, so nearly every request is small and file-unaligned.
func tinyUnalignedWrites(withDXT bool) *iosim.Sim {
	s := iosim.New(iosim.Config{Seed: 101, NProcs: 8, EnableDXT: withDXT})
	iosim.FilePerProcessWrite(s, "/scratch/tiny/out.%d", iosim.POSIX, nil, 512<<10, 3000)
	return s
}

// metadataStorm: a stat/open flood across hundreds of tiny per-rank
// files, plus the tiny writes that created them.
func metadataStorm(withDXT bool) *iosim.Sim {
	s := iosim.New(iosim.Config{Seed: 102, NProcs: 4, EnableDXT: withDXT})
	iosim.MetadataStorm(s, "/scratch/storm", 160, 4)
	iosim.FilePerProcessWrite(s, "/scratch/storm/data.%d", iosim.POSIX, nil, 64<<10, 1000)
	return s
}

// sharedFileContention: all ranks interleave 1 MB writes into one shared
// file.
func sharedFileContention(withDXT bool) *iosim.Sim {
	s := iosim.New(iosim.Config{Seed: 103, NProcs: 8, EnableDXT: withDXT})
	iosim.WriteShared(s, "/scratch/shared/checkpoint.h5", iosim.POSIX, nil, 64<<20, 1<<20)
	return s
}

// smallReadStorm: every rank hammers one shared input with tiny reads at
// random offsets — the under-buffered analysis reader that re-fetches
// scattered 4 KB records instead of streaming blocks.
func smallReadStorm(withDXT bool) *iosim.Sim {
	s := iosim.New(iosim.Config{Seed: 105, NProcs: 8, EnableDXT: withDXT})
	f := s.OpenShared("/scratch/analysis/input.dat", iosim.POSIX, false, nil)
	iosim.RandomReads(s, f, 400, 4000, 48<<20)
	return s
}

// stragglerRanks: one rank pays 6x the operation cost of its peers while
// all ranks write a shared file, so its I/O time dominates the mean.
func stragglerRanks(withDXT bool) *iosim.Sim {
	skew := []float64{1, 1, 1, 1, 1, 1, 1, 6}
	s := iosim.New(iosim.Config{Seed: 104, NProcs: 8, RankSkew: skew, EnableDXT: withDXT})
	iosim.WriteShared(s, "/scratch/skew/out.dat", iosim.POSIX, nil, 32<<20, 1<<20)
	return s
}
