package issue

import "testing"

func TestAllHaveDescriptionsAndRecommendations(t *testing.T) {
	if len(All) != 16 {
		t.Fatalf("label set has %d entries, want 16 (Table II/III)", len(All))
	}
	for _, l := range All {
		if Descriptions[l] == "" {
			t.Errorf("label %q has no description", l)
		}
		if Recommendations[l] == "" {
			t.Errorf("label %q has no recommendation", l)
		}
		if len(Topics[l]) < 2 {
			t.Errorf("label %q has too few topics", l)
		}
	}
}

func TestParseCanonical(t *testing.T) {
	for _, l := range All {
		got, ok := Parse(string(l))
		if !ok || got != l {
			t.Errorf("Parse(%q) = %q, %v", l, got, ok)
		}
	}
}

func TestParseVariants(t *testing.T) {
	cases := map[string]Label{
		"misaligned read requests":       MisalignedReads,
		"Misaligned Write requests":      MisalignedWrites,
		"small write i/o requests":       SmallWrites,
		"SMALL READ I/O REQUESTS":        SmallReads,
		"Multi-Process W/O MPI":          MultiProcessNoMPI,
		"no collective i/o on write":     NoCollectiveWrite,
		"Random Access Patterns on Read": RandomReads,
	}
	for in, want := range cases {
		got, ok := Parse(in)
		if !ok || got != want {
			t.Errorf("Parse(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
	if _, ok := Parse("Totally Made Up Issue"); ok {
		t.Error("Parse should reject unknown issues")
	}
}

func TestSetSorted(t *testing.T) {
	s := NewSet(SmallWrites, HighMetadataLoad, ServerImbalance)
	got := s.Sorted()
	want := []Label{HighMetadataLoad, SmallWrites, ServerImbalance}
	if len(got) != len(want) {
		t.Fatalf("Sorted() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestF1(t *testing.T) {
	truth := NewSet(SmallWrites, MisalignedWrites)
	pred := NewSet(SmallWrites, RandomReads)
	p, r, f1 := F1(truth, pred)
	if p != 0.5 || r != 0.5 || f1 != 0.5 {
		t.Errorf("F1 = (%g,%g,%g), want (0.5,0.5,0.5)", p, r, f1)
	}
	if _, _, f1 := F1(NewSet(), NewSet()); f1 != 1 {
		t.Errorf("empty/empty F1 = %g, want 1", f1)
	}
	if _, _, f1 := F1(truth, NewSet()); f1 != 0 {
		t.Errorf("empty prediction F1 = %g, want 0", f1)
	}
}
