// Package issue defines the canonical I/O performance issue vocabulary used
// across the repository: the 16 labels of the paper's Table II (with the
// read/write variants expanded as in Table III), their descriptions, and
// per-issue remediation guidance. Every tool (IOAgent, Drishti, ION), the
// TraceBench ground truth, and the evaluation harness share this vocabulary.
package issue

import (
	"sort"
	"strings"
)

// Label identifies one I/O performance issue class.
type Label string

// The TraceBench label set (paper Table II / Table III rows).
const (
	HighMetadataLoad  Label = "High Metadata Load"
	MisalignedReads   Label = "Misaligned Read Requests"
	MisalignedWrites  Label = "Misaligned Write Requests"
	RandomReads       Label = "Random Access Patterns on Read"
	RandomWrites      Label = "Random Access Patterns on Write"
	SharedFileAccess  Label = "Shared File Access"
	SmallReads        Label = "Small Read I/O Requests"
	SmallWrites       Label = "Small Write I/O Requests"
	RepetitiveReads   Label = "Repetitive Data Access on Read"
	ServerImbalance   Label = "Server Load Imbalance"
	RankImbalance     Label = "Rank Load Imbalance"
	MultiProcessNoMPI Label = "Multi-Process Without MPI"
	NoCollectiveRead  Label = "No Collective I/O on Read"
	NoCollectiveWrite Label = "No Collective I/O on Write"
	LowLevelLibRead   Label = "Low-Level Library on Read"
	LowLevelLibWrite  Label = "Low-Level Library on Write"
)

// All lists every label in Table III row order.
var All = []Label{
	HighMetadataLoad,
	MisalignedReads, MisalignedWrites,
	RandomWrites, RandomReads,
	SharedFileAccess,
	SmallReads, SmallWrites,
	RepetitiveReads,
	ServerImbalance, RankImbalance,
	MultiProcessNoMPI,
	NoCollectiveRead, NoCollectiveWrite,
	LowLevelLibRead, LowLevelLibWrite,
}

// Descriptions reproduces the description column of Table II.
var Descriptions = map[Label]string{
	HighMetadataLoad:  "The application spends a significant amount of time performing metadata operations (e.g., directory lookups, file system operations).",
	MisalignedReads:   "The application makes read requests that are not aligned with the file system's stripe boundaries.",
	MisalignedWrites:  "The application makes write requests that are not aligned with the file system's stripe boundaries.",
	RandomReads:       "The application issues read requests in a random access pattern.",
	RandomWrites:      "The application issues write requests in a random access pattern.",
	SharedFileAccess:  "The application has multiple processes or ranks accessing the same file.",
	SmallReads:        "The application is making frequent read requests with a small number of bytes.",
	SmallWrites:       "The application is making frequent write requests with a small number of bytes.",
	RepetitiveReads:   "The application is making read requests to the same data repeatedly.",
	ServerImbalance:   "The application issues a disproportionate amount of I/O traffic to some servers compared to others or does not properly utilize the available storage resources.",
	RankImbalance:     "The application has MPI ranks issuing a disproportionate amount of I/O traffic compared to others.",
	MultiProcessNoMPI: "The application has multiple processes but does not leverage MPI.",
	NoCollectiveRead:  "The application does not perform collective I/O on read operations.",
	NoCollectiveWrite: "The application does not perform collective I/O on write operations.",
	LowLevelLibRead:   "The application relies on a low-level library like STDIO for a significant amount of read operations outside of loading/reading configuration or output files.",
	LowLevelLibWrite:  "The application relies on a low-level library like STDIO for a significant amount of write operations outside of loading/reading configuration or output files.",
}

// Recommendations carries per-issue remediation guidance used by diagnosis
// reports and the interactive assistant.
var Recommendations = map[Label]string{
	HighMetadataLoad:  "Reduce per-file open/stat churn: aggregate many small files into container formats (HDF5, ADIOS), cache stat results, and avoid opening files inside inner loops.",
	MisalignedReads:   "Align read offsets with the file system stripe boundary (e.g. issue transfers at multiples of the stripe size) or set the stripe size to match the transfer size with lfs setstripe -S.",
	MisalignedWrites:  "Align write offsets with the file system stripe boundary or adjust the stripe size with lfs setstripe -S so writes start on stripe boundaries.",
	RandomReads:       "Restructure read loops to access data sequentially, batch and sort offsets before issuing them, or use MPI-IO collective reads so the library can reorder accesses.",
	RandomWrites:      "Buffer writes and flush them in offset order, or use collective buffering (MPI-IO write_all) to let aggregators linearize the access stream.",
	SharedFileAccess:  "Shared-file access is efficient only with collective I/O or careful stripe tuning; otherwise consider file-per-process or subfiling to avoid lock contention.",
	SmallReads:        "Batch small reads into larger transfers (at least 1 MiB), enable read-ahead/data sieving, or use a higher-level library that aggregates requests.",
	SmallWrites:       "Aggregate small writes into larger buffers before flushing (at least 1 MiB per request), or use MPI-IO collective buffering to combine per-rank fragments.",
	RepetitiveReads:   "Cache repeatedly-read data in memory (or burst buffer) instead of re-reading it from the parallel file system.",
	ServerImbalance:   "Spread large files over more storage targets: raise the Lustre stripe count (lfs setstripe -c) so traffic is distributed across OSTs instead of hammering one server.",
	RankImbalance:     "Rebalance the I/O decomposition so every rank moves a comparable volume, or route I/O through collective operations with even aggregator placement.",
	MultiProcessNoMPI: "Adopt MPI (or an MPI-IO based high-level library) so the processes can coordinate I/O instead of issuing uncoordinated POSIX streams.",
	NoCollectiveRead:  "Use MPI_File_read_all (or the collective mode of your high-level library) so the MPI-IO layer can merge per-rank requests into large contiguous transfers.",
	NoCollectiveWrite: "Use MPI_File_write_all (or enable collective buffering via hints like romio_cb_write) so aggregators issue large stripe-aligned writes.",
	LowLevelLibRead:   "Move bulk reads from STDIO (fread) to POSIX or, better, MPI-IO/HDF5; the buffered stdio layer serializes and copies every transfer.",
	LowLevelLibWrite:  "Move bulk writes from STDIO (fwrite) to POSIX or, better, MPI-IO/HDF5; stdio buffering adds copies and defeats parallel-file-system optimizations.",
}

// Topics maps each label to retrieval topic keywords used to align
// diagnoses with the knowledge corpus.
var Topics = map[Label][]string{
	HighMetadataLoad:  {"metadata", "stat", "open", "mdt"},
	MisalignedReads:   {"alignment", "stripe", "boundary", "read"},
	MisalignedWrites:  {"alignment", "stripe", "boundary", "write"},
	RandomReads:       {"random", "access", "pattern", "read", "sequential"},
	RandomWrites:      {"random", "access", "pattern", "write", "sequential"},
	SharedFileAccess:  {"shared", "file", "contention", "lock"},
	SmallReads:        {"small", "read", "request", "transfer", "size"},
	SmallWrites:       {"small", "write", "request", "transfer", "size"},
	RepetitiveReads:   {"repetitive", "reread", "cache", "read"},
	ServerImbalance:   {"stripe", "ost", "server", "imbalance", "count", "width"},
	RankImbalance:     {"rank", "imbalance", "straggler", "variance"},
	MultiProcessNoMPI: {"mpi", "process", "coordination", "posix"},
	NoCollectiveRead:  {"collective", "read", "mpi-io", "aggregation"},
	NoCollectiveWrite: {"collective", "write", "mpi-io", "aggregation", "two-phase"},
	LowLevelLibRead:   {"stdio", "buffered", "library", "read"},
	LowLevelLibWrite:  {"stdio", "buffered", "library", "write"},
}

// Parse maps a free-form issue mention back to a Label. Matching is
// case-insensitive and tolerant of the "[Read|Write]" phrasing variants the
// paper uses. It returns false when no label matches.
func Parse(s string) (Label, bool) {
	needle := normalize(s)
	for _, l := range All {
		if normalize(string(l)) == needle {
			return l, true
		}
	}
	for _, l := range All {
		if alias, ok := aliases[needle]; ok && alias == l {
			return l, true
		}
	}
	return "", false
}

var aliases = map[string]Label{
	normalize("Misaligned Read requests"):              MisalignedReads,
	normalize("Misaligned Write requests"):             MisalignedWrites,
	normalize("Small Read Requests"):                   SmallReads,
	normalize("Small Write Requests"):                  SmallWrites,
	normalize("Multi-Process W/O MPI"):                 MultiProcessNoMPI,
	normalize("Repetitive Data Access"):                RepetitiveReads,
	normalize("No Collective Read"):                    NoCollectiveRead,
	normalize("No Collective Write"):                   NoCollectiveWrite,
	normalize("Random Write Access"):                   RandomWrites,
	normalize("Random Read Access"):                    RandomReads,
	normalize("Low-Level Library on Read operations"):  LowLevelLibRead,
	normalize("Low-Level Library on Write operations"): LowLevelLibWrite,
}

func normalize(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	repl := strings.NewReplacer("i/o", "io", "-", " ", "_", " ", "/", " ")
	s = repl.Replace(s)
	return strings.Join(strings.Fields(s), " ")
}

// Set is an order-independent collection of labels.
type Set map[Label]bool

// NewSet builds a Set from labels.
func NewSet(labels ...Label) Set {
	s := make(Set, len(labels))
	for _, l := range labels {
		s[l] = true
	}
	return s
}

// Sorted returns the labels in Table III row order.
func (s Set) Sorted() []Label {
	var out []Label
	for _, l := range All {
		if s[l] {
			out = append(out, l)
		}
	}
	// Include any non-canonical labels deterministically at the end.
	var extra []string
	for l := range s {
		if _, ok := Descriptions[l]; !ok {
			extra = append(extra, string(l))
		}
	}
	sort.Strings(extra)
	for _, e := range extra {
		out = append(out, Label(e))
	}
	return out
}

// F1 computes precision, recall and F1 of predicted labels against truth.
func F1(truth, predicted Set) (precision, recall, f1 float64) {
	if len(predicted) == 0 && len(truth) == 0 {
		return 1, 1, 1
	}
	var tp int
	for l := range predicted {
		if truth[l] {
			tp++
		}
	}
	if len(predicted) > 0 {
		precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// FindMentions scans free-form text for mentions of canonical issue labels
// (used to score unstructured diagnoses such as ION's prose output).
// Matching is case-insensitive over normalized text.
func FindMentions(text string) Set {
	norm := normalize(text)
	out := make(Set)
	for _, l := range All {
		if strings.Contains(norm, normalize(string(l))) {
			out[l] = true
		}
	}
	return out
}
