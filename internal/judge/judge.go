// Package judge implements the paper's LLM-based rating system (Section
// VI-B): diagnosis outputs from multiple tools are ranked 1..4 per
// evaluation criterion by a capable LLM, with three prompt augmentations
// that cancel the judge's biases (Fig. 4):
//
//	A. candidate names are anonymized (Tool-1..Tool-N);
//	B. the rank-assignment order in the response format rotates;
//	C. the order candidates appear in the prompt rotates.
//
// Each sample is ranked over at least four permutations so every rotation
// appears, and ranks are averaged. Scores follow Eqs. (1)-(2): a rank R
// contributes (4-R), summed per source and normalized by 3·|D|.
package judge

import (
	"fmt"
	"regexp"
	"strings"

	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

// Criteria evaluated per the paper.
const (
	Accuracy         = "accuracy"
	Utility          = "utility"
	Interpretability = "interpretability"
)

// Criteria lists the three evaluation criteria in paper order.
var Criteria = []string{Accuracy, Utility, Interpretability}

// Entry is one tool's diagnosis of one trace.
type Entry struct {
	Tool string // real tool name
	Text string // diagnosis output
}

// Augmentations toggles the three bias-canceling prompt augmentations.
type Augmentations struct {
	Anonymize     bool // A: hide tool names
	RotateFormat  bool // B: rotate the rank-assignment order
	RotateContent bool // C: rotate candidate order in the prompt
}

// All enables every augmentation (the paper's configuration).
func All() Augmentations {
	return Augmentations{Anonymize: true, RotateFormat: true, RotateContent: true}
}

// None disables every augmentation (the ablation baseline).
func None() Augmentations { return Augmentations{} }

// Judge ranks diagnosis outputs with an LLM.
type Judge struct {
	Client llm.Client
	// Model is the ranking model (default gpt-4o-sim, as in the paper).
	Model string
	// Permutations is the number of ranking repetitions (default 4).
	Permutations int
	// Augment selects the bias-canceling augmentations.
	Augment Augmentations
}

// New builds a judge with the paper's defaults.
func New(client llm.Client) *Judge {
	return &Judge{Client: client, Model: llm.GPT4o, Permutations: 4, Augment: All()}
}

// MeanRanks ranks the entries under one criterion across the configured
// permutations and returns each entry's mean rank (1 = best). For the
// accuracy criterion, truth supplies the ground-truth labels included in
// the prompt.
func (j *Judge) MeanRanks(entries []Entry, criterion string, truth issue.Set) ([]float64, error) {
	n := len(entries)
	if n == 0 {
		return nil, fmt.Errorf("judge: no entries")
	}
	perms := j.Permutations
	if perms <= 0 {
		perms = 4
	}
	model := j.Model
	if model == "" {
		model = llm.GPT4o
	}

	sums := make([]float64, n)
	for p := 0; p < perms; p++ {
		contentOrder := identity(n)
		if j.Augment.RotateContent {
			contentOrder = rotate(identity(n), p)
		}
		formatOrder := identity(n)
		if j.Augment.RotateFormat {
			formatOrder = rotate(identity(n), (p+1)%n)
		}

		prompt, names := j.buildPrompt(entries, criterion, truth, contentOrder, formatOrder)
		resp, err := j.Client.Complete(llm.Prompt(model, prompt))
		if err != nil {
			return nil, fmt.Errorf("judge: %w", err)
		}
		ranks, err := parseRanks(resp.Content, names)
		if err != nil {
			return nil, err
		}
		// names[i] corresponds to entries[contentOrder[i]].
		for i, r := range ranks {
			sums[contentOrder[i]] += float64(r)
		}
	}
	for i := range sums {
		sums[i] /= float64(perms)
	}
	return sums, nil
}

// buildPrompt renders the ranking prompt for one permutation and returns
// the candidate display names in content order.
func (j *Judge) buildPrompt(entries []Entry, criterion string, truth issue.Set, contentOrder, formatOrder []int) (string, []string) {
	var b strings.Builder
	b.WriteString("TASK: rank\n")
	fmt.Fprintf(&b, "CRITERION: %s\n", criterion)
	fmt.Fprintf(&b, "Rank the candidate diagnoses from best (rank 1) to worst (rank %d) under the stated criterion: %s.\n",
		len(entries), criterionDescription(criterion))
	b.WriteString("Explain the reasoning behind the assigned positions.\n")

	if criterion == Accuracy && truth != nil {
		b.WriteString("\nGROUND TRUTH ISSUES:\n")
		for _, l := range truth.Sorted() {
			fmt.Fprintf(&b, "- %s\n", l)
		}
		b.WriteString("\n")
	}

	// Augmentation B: the response-format section lists rank slots in a
	// rotated candidate order.
	fmtParts := make([]string, len(formatOrder))
	for i, idx := range formatOrder {
		fmtParts[i] = fmt.Sprintf("%d", posInOrder(contentOrder, idx))
	}
	fmt.Fprintf(&b, "FORMAT ORDER: %s\n\n", strings.Join(fmtParts, ", "))

	names := make([]string, len(contentOrder))
	for i, idx := range contentOrder {
		name := entries[idx].Tool
		if j.Augment.Anonymize {
			name = fmt.Sprintf("Tool-%d", i+1)
		}
		names[i] = name
		fmt.Fprintf(&b, "=== CANDIDATE %s ===\n%s\n", name, entries[idx].Text)
	}
	b.WriteString("=== END CANDIDATES ===\n")
	return b.String(), names
}

func criterionDescription(c string) string {
	switch c {
	case Utility:
		return "how useful the information is for understanding the application's I/O behavior, identifying performance issues, and determining how to address each noted issue (regardless of factuality)"
	case Interpretability:
		return "how readable and understandable the provided information is for users at any level of familiarity with HPC I/O"
	default:
		return "how accurately the ground truth issue labels are diagnosed"
	}
}

var rankLineRe = regexp.MustCompile(`(?m)^RANK (\d+): (.+)$`)

// parseRanks maps each display name to its assigned rank. A reply is
// rejected — not silently repaired — when it names a candidate twice, hands
// out the same rank twice, or uses a rank outside [1, len(names)]: averaging
// a malformed permutation would corrupt every candidate's mean, so the
// caller must treat the whole reply as unusable.
func parseRanks(content string, names []string) ([]int, error) {
	n := len(names)
	assigned := make(map[string]int)
	usedRank := make(map[int]string)
	for _, m := range rankLineRe.FindAllStringSubmatch(content, -1) {
		var r int
		fmt.Sscanf(m[1], "%d", &r)
		name := strings.TrimSpace(m[2])
		if r < 1 || r > n {
			return nil, fmt.Errorf("judge: rank %d for %q out of range [1, %d]:\n%s", r, name, n, content)
		}
		if prev, dup := assigned[name]; dup {
			return nil, fmt.Errorf("judge: %q ranked twice (%d and %d):\n%s", name, prev, r, content)
		}
		if holder, dup := usedRank[r]; dup {
			return nil, fmt.Errorf("judge: rank %d assigned to both %q and %q:\n%s", r, holder, name, content)
		}
		assigned[name] = r
		usedRank[r] = name
	}
	ranks := make([]int, n)
	for i, name := range names {
		r, ok := assigned[name]
		if !ok {
			return nil, fmt.Errorf("judge: response missing rank for %q:\n%s", name, content)
		}
		ranks[i] = r
	}
	return ranks, nil
}

// Score converts a mean rank into the paper's per-sample score 4 - R.
func Score(meanRank float64) float64 { return 4 - meanRank }

// Normalize converts a summed score over |D| samples into Eq. (2)'s
// normalized score in [0,1].
func Normalize(sum float64, samples int) float64 {
	if samples == 0 {
		return 0
	}
	return sum / (3 * float64(samples))
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func rotate(xs []int, k int) []int {
	n := len(xs)
	if n == 0 {
		return xs
	}
	k %= n
	return append(xs[k:], xs[:k]...)
}

func posInOrder(order []int, idx int) int {
	for pos, v := range order {
		if v == idx {
			return pos
		}
	}
	return 0
}
