package judge

import (
	"math"
	"testing"

	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

func mkEntry(tool string, labels []issue.Label, refs bool) Entry {
	rep := &llm.Report{Preamble: "Analysis."}
	for _, l := range labels {
		f := llm.Finding{Label: l,
			Evidence:       "the trace shows strong concrete evidence of this behavior with 42 operations affected overall today",
			Recommendation: issue.Recommendations[l]}
		if refs {
			f.Refs = []string{"carns2011darshan"}
		}
		rep.Findings = append(rep.Findings, f)
	}
	return Entry{Tool: tool, Text: rep.Format()}
}

func TestMeanRanksOrdering(t *testing.T) {
	truth := issue.NewSet(issue.SmallWrites, issue.SharedFileAccess, issue.NoCollectiveWrite)
	entries := []Entry{
		mkEntry("perfect", []issue.Label{issue.SmallWrites, issue.SharedFileAccess, issue.NoCollectiveWrite}, true),
		mkEntry("partial", []issue.Label{issue.SmallWrites}, false),
		mkEntry("wrong", []issue.Label{issue.HighMetadataLoad, issue.RandomReads}, false),
		mkEntry("empty", nil, false),
	}
	j := New(llm.NewSim())
	j.Permutations = 8
	ranks, err := j.MeanRanks(entries, Accuracy, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !(ranks[0] < ranks[1] && ranks[1] < ranks[3]) {
		t.Errorf("accuracy ranking out of order: %v", ranks)
	}
	if ranks[0] > 2.0 {
		t.Errorf("perfect diagnosis should rank near 1, got %.2f", ranks[0])
	}
}

func TestParseRanksMalformed(t *testing.T) {
	names := []string{"Tool-1", "Tool-2", "Tool-3"}
	cases := []struct {
		name    string
		content string
		want    []int // nil means an error is expected
	}{
		{
			name:    "well formed",
			content: "reasoning...\nRANK 1: Tool-2\nRANK 2: Tool-1\nRANK 3: Tool-3\n",
			want:    []int{2, 1, 3},
		},
		{
			name:    "well formed with surrounding prose",
			content: "The strongest candidate is Tool-3.\nRANK 1: Tool-3\nRANK 2: Tool-2\nRANK 3: Tool-1\nDone.",
			want:    []int{3, 2, 1},
		},
		{
			name:    "duplicate rank value",
			content: "RANK 1: Tool-1\nRANK 1: Tool-2\nRANK 3: Tool-3\n",
		},
		{
			name:    "same candidate ranked twice",
			content: "RANK 1: Tool-1\nRANK 2: Tool-1\nRANK 3: Tool-3\n",
		},
		{
			name:    "rank zero",
			content: "RANK 0: Tool-1\nRANK 1: Tool-2\nRANK 2: Tool-3\n",
		},
		{
			name:    "rank beyond candidate count",
			content: "RANK 1: Tool-1\nRANK 2: Tool-2\nRANK 4: Tool-3\n",
		},
		{
			name:    "missing candidate",
			content: "RANK 1: Tool-1\nRANK 2: Tool-3\n",
		},
		{
			name:    "unknown candidate only",
			content: "RANK 1: Tool-9\nRANK 2: Tool-8\nRANK 3: Tool-7\n",
		},
		{
			name:    "empty reply",
			content: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseRanks(tc.content, names)
			if tc.want == nil {
				if err == nil {
					t.Fatalf("parseRanks accepted malformed reply, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseRanks: %v", err)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("ranks = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestScoreMath(t *testing.T) {
	if Score(1) != 3 || Score(4) != 0 {
		t.Error("Score(rank) must be 4 - rank")
	}
	if got := Normalize(30, 10); got != 1 {
		t.Errorf("Normalize(30,10) = %g, want 1 (all rank-1)", got)
	}
	if got := Normalize(0, 10); got != 0 {
		t.Errorf("Normalize(0,10) = %g", got)
	}
	if Normalize(5, 0) != 0 {
		t.Error("Normalize with zero samples must be 0")
	}
}

func TestRanksAreCompletePermutation(t *testing.T) {
	truth := issue.NewSet(issue.SmallWrites)
	entries := []Entry{
		mkEntry("a", []issue.Label{issue.SmallWrites}, false),
		mkEntry("b", nil, false),
		mkEntry("c", []issue.Label{issue.RandomReads}, false),
		mkEntry("d", []issue.Label{issue.SmallWrites, issue.RandomReads}, false),
	}
	j := New(llm.NewSim())
	j.Permutations = 1
	ranks, err := j.MeanRanks(entries, Accuracy, truth)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if sum != 1+2+3+4 {
		t.Errorf("single-permutation ranks must be a permutation of 1..4, got %v", ranks)
	}
}

// TestAugmentationsCancelBias reproduces the Fig. 4 rationale: with two
// equally-good candidates, the un-augmented judge systematically favors a
// position/name, while the fully augmented judge is close to fair.
func TestAugmentationsCancelBias(t *testing.T) {
	labels := []issue.Label{issue.SmallWrites, issue.SharedFileAccess}
	truth := issue.NewSet(labels...)
	// Identical quality, different (recognizable) names.
	mk := func(tool string) Entry { return mkEntry(tool, labels, true) }

	meanGap := func(aug Augmentations, flip bool) float64 {
		j := New(llm.NewSim())
		j.Augment = aug
		j.Permutations = 4
		var gap float64
		n := 24
		for i := 0; i < n; i++ {
			// Vary the content slightly so judge noise redraws.
			a := mk("Drishti")
			b := mk("IOAgent")
			pad := ""
			for k := 0; k < i; k++ {
				pad += " detail"
			}
			a.Text += "\nNotes:\n- run " + pad + "\n"
			b.Text += "\nNotes:\n- run " + pad + "\n"
			entries := []Entry{a, b}
			if flip {
				entries = []Entry{b, a}
			}
			ranks, err := j.MeanRanks(entries, Accuracy, truth)
			if err != nil {
				t.Fatal(err)
			}
			first := 0
			if flip {
				first = 1
			}
			gap += ranks[1-first] - ranks[first] // second-listed minus first-listed
		}
		return gap / float64(n)
	}

	biased := meanGap(None(), false)
	augmented := meanGap(All(), false)
	if math.Abs(biased) <= math.Abs(augmented) {
		t.Errorf("augmentations should reduce positional/name bias: |%.3f| (none) vs |%.3f| (all)", biased, augmented)
	}
	if math.Abs(augmented) > 0.5 {
		t.Errorf("augmented judge still strongly biased: gap %.3f", augmented)
	}
}

func TestBuildPromptStructure(t *testing.T) {
	j := New(llm.NewSim())
	entries := []Entry{
		{Tool: "Drishti", Text: "text-a"},
		{Tool: "ION", Text: "text-b"},
	}
	prompt, names := j.buildPrompt(entries, Accuracy, issue.NewSet(issue.SmallWrites), []int{1, 0}, []int{0, 1})
	if names[0] != "Tool-1" || names[1] != "Tool-2" {
		t.Errorf("anonymization failed: %v", names)
	}
	for _, want := range []string{"TASK: rank", "CRITERION: accuracy", "GROUND TRUTH ISSUES:", "- Small Write I/O Requests", "FORMAT ORDER:", "=== CANDIDATE Tool-1 ===", "text-b"} {
		if !contains(prompt, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	// Content order [1,0]: ION's text comes first.
	if idxOf(prompt, "text-b") > idxOf(prompt, "text-a") {
		t.Error("content rotation not applied")
	}
}

func contains(s, sub string) bool { return idxOf(s, sub) >= 0 }

func idxOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEmptyEntries(t *testing.T) {
	j := New(llm.NewSim())
	if _, err := j.MeanRanks(nil, Accuracy, nil); err == nil {
		t.Error("expected error for no entries")
	}
}
