package iosim

import (
	"bytes"
	"testing"

	"ioagent/internal/darshan"
)

func newTestSim(nprocs int) *Sim {
	return New(Config{Seed: 7, NProcs: nprocs, UsesMPI: true, Exe: "/bin/test.x"})
}

func TestPosixSequentialWriteCounters(t *testing.T) {
	s := newTestSim(1)
	f := s.Open("/scratch/out.dat", 0, POSIX, nil)
	for i := int64(0); i < 10; i++ {
		f.WriteAt(0, i*1024, 1024)
	}
	f.Close()
	log := s.Finalize()

	rec := log.Module(darshan.ModulePOSIX).Find("/scratch/out.dat", 0)
	if rec == nil {
		t.Fatal("missing POSIX record")
	}
	if got := rec.C("POSIX_WRITES"); got != 10 {
		t.Errorf("POSIX_WRITES = %d, want 10", got)
	}
	if got := rec.C("POSIX_BYTES_WRITTEN"); got != 10240 {
		t.Errorf("POSIX_BYTES_WRITTEN = %d, want 10240", got)
	}
	// 9 follow-on writes are consecutive and sequential.
	if got := rec.C("POSIX_CONSEC_WRITES"); got != 9 {
		t.Errorf("POSIX_CONSEC_WRITES = %d, want 9", got)
	}
	if got := rec.C("POSIX_SEQ_WRITES"); got != 9 {
		t.Errorf("POSIX_SEQ_WRITES = %d, want 9", got)
	}
	if got := rec.C("POSIX_SIZE_WRITE_1K_10K"); got != 10 {
		t.Errorf("1K-10K histogram = %d, want 10", got)
	}
	if got := rec.C("POSIX_MAX_BYTE_WRITTEN"); got != 10*1024-1 {
		t.Errorf("POSIX_MAX_BYTE_WRITTEN = %d, want %d", got, 10*1024-1)
	}
	if rec.C("POSIX_OPENS") != 1 {
		t.Errorf("POSIX_OPENS = %d, want 1", rec.C("POSIX_OPENS"))
	}
	if rec.F("POSIX_F_WRITE_TIME") <= 0 {
		t.Error("POSIX_F_WRITE_TIME should be positive")
	}
	// Common access size: 1024 x10.
	if rec.C("POSIX_ACCESS1_ACCESS") != 1024 || rec.C("POSIX_ACCESS1_COUNT") != 10 {
		t.Errorf("ACCESS1 = (%d,%d), want (1024,10)",
			rec.C("POSIX_ACCESS1_ACCESS"), rec.C("POSIX_ACCESS1_COUNT"))
	}
}

func TestRandomAccessDetection(t *testing.T) {
	s := newTestSim(1)
	f := s.Open("/scratch/rand.dat", 0, POSIX, nil)
	// Write backwards: each op lands before the previous one.
	offs := []int64{9000, 6000, 3000, 0}
	for _, o := range offs {
		f.WriteAt(0, o, 100)
	}
	log := s.Finalize()
	rec := log.Module(darshan.ModulePOSIX).Find("/scratch/rand.dat", 0)
	if got := rec.C("POSIX_SEQ_WRITES"); got != 0 {
		t.Errorf("SEQ_WRITES = %d, want 0 for backwards pattern", got)
	}
	if got := rec.C("POSIX_SEEKS"); got != 3 {
		t.Errorf("SEEKS = %d, want 3", got)
	}
}

func TestRWSwitches(t *testing.T) {
	s := newTestSim(1)
	f := s.Open("/scratch/rw.dat", 0, POSIX, nil)
	f.WriteAt(0, 0, 100)
	f.ReadAt(0, 100, 100)
	f.WriteAt(0, 200, 100)
	log := s.Finalize()
	rec := log.Module(darshan.ModulePOSIX).Find("/scratch/rw.dat", 0)
	if got := rec.C("POSIX_RW_SWITCHES"); got != 2 {
		t.Errorf("RW_SWITCHES = %d, want 2", got)
	}
}

func TestAlignment(t *testing.T) {
	s := New(Config{Seed: 1, NProcs: 1})
	lay := &Layout{StripeSize: 1 << 20, StripeWidth: 1}
	f := s.Open("/scratch/align.dat", 0, POSIX, lay)
	f.WriteAt(0, 0, 1<<20)       // aligned
	f.WriteAt(0, 1<<20, 1<<20)   // aligned
	f.WriteAt(0, 2<<20+13, 4096) // unaligned offset
	log := s.Finalize()
	rec := log.Module(darshan.ModulePOSIX).Find("/scratch/align.dat", 0)
	if got := rec.C("POSIX_FILE_NOT_ALIGNED"); got != 1 {
		t.Errorf("FILE_NOT_ALIGNED = %d, want 1", got)
	}
	if got := rec.C("POSIX_FILE_ALIGNMENT"); got != 1<<20 {
		t.Errorf("FILE_ALIGNMENT = %d, want 1MiB", got)
	}
}

func TestSharedFileReduction(t *testing.T) {
	s := newTestSim(4)
	f := s.OpenShared("/scratch/shared.dat", POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		f.WriteAt(rank, int64(rank)*4096, 4096)
	}
	log := s.Finalize()
	md := log.Module(darshan.ModulePOSIX)
	recs := 0
	for _, r := range md.Records {
		if r.Name == "/scratch/shared.dat" {
			recs++
			if r.Rank != darshan.SharedRank {
				t.Errorf("shared file record has rank %d, want %d", r.Rank, darshan.SharedRank)
			}
			if got := r.C("POSIX_WRITES"); got != 4 {
				t.Errorf("reduced POSIX_WRITES = %d, want 4", got)
			}
			if got := r.C("POSIX_BYTES_WRITTEN"); got != 4*4096 {
				t.Errorf("reduced BYTES_WRITTEN = %d, want %d", got, 4*4096)
			}
			if got := r.C("POSIX_OPENS"); got != 4 {
				t.Errorf("reduced OPENS = %d, want 4", got)
			}
			fr := r.C("POSIX_FASTEST_RANK")
			sr := r.C("POSIX_SLOWEST_RANK")
			if fr < 0 || fr > 3 || sr < 0 || sr > 3 {
				t.Errorf("fastest/slowest ranks out of range: %d/%d", fr, sr)
			}
			if r.F("POSIX_F_SLOWEST_RANK_TIME") < r.F("POSIX_F_FASTEST_RANK_TIME") {
				t.Error("slowest rank time < fastest rank time")
			}
		}
	}
	if recs != 1 {
		t.Fatalf("found %d records for shared file, want 1 reduced record", recs)
	}
}

func TestRankSkewProducesImbalance(t *testing.T) {
	skew := []float64{1, 1, 1, 8}
	s := New(Config{Seed: 3, NProcs: 4, UsesMPI: true, RankSkew: skew})
	f := s.OpenShared("/scratch/imb.dat", POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 20; i++ {
			f.WriteAt(rank, int64(rank*20+i)*65536, 65536)
		}
	}
	log := s.Finalize()
	rec := log.Module(darshan.ModulePOSIX).Find("/scratch/imb.dat", darshan.SharedRank)
	if rec == nil {
		t.Fatal("missing shared record")
	}
	if got := rec.C("POSIX_SLOWEST_RANK"); got != 3 {
		t.Errorf("SLOWEST_RANK = %d, want 3 (the skewed rank)", got)
	}
	if rec.F("POSIX_F_VARIANCE_RANK_TIME") <= 0 {
		t.Error("variance of rank time should be positive under skew")
	}
}

func TestMPICollectiveTwoPhase(t *testing.T) {
	lay := &Layout{StripeSize: 1 << 20, StripeWidth: 4}
	s := New(Config{Seed: 5, NProcs: 8, UsesMPI: true,
		FS: LustreConfig{MountPoint: "/scratch", NumOSTs: 16, DefaultStripeSize: 1 << 20, DefaultStripeWidth: 1, PerOSTBandwidth: 500e6}})
	f := s.OpenShared("/scratch/coll.dat", MPIColl, true, lay)
	f.CollectiveWrite(0, 1<<20) // each of 8 ranks contributes 1 MiB
	log := s.Finalize()

	mrec := log.Module(darshan.ModuleMPIIO).Find("/scratch/coll.dat", darshan.SharedRank)
	if mrec == nil {
		t.Fatal("missing MPI-IO shared record")
	}
	if got := mrec.C("MPIIO_COLL_WRITES"); got != 8 {
		t.Errorf("MPIIO_COLL_WRITES = %d, want 8", got)
	}
	if got := mrec.C("MPIIO_COLL_OPENS"); got != 8 {
		t.Errorf("MPIIO_COLL_OPENS = %d, want 8", got)
	}
	if got := mrec.C("MPIIO_BYTES_WRITTEN"); got != 8<<20 {
		t.Errorf("MPIIO_BYTES_WRITTEN = %d, want 8MiB", got)
	}

	prec := log.Module(darshan.ModulePOSIX).Find("/scratch/coll.dat", darshan.SharedRank)
	if prec == nil {
		// All POSIX ops may have landed on fewer ranks than opened;
		// opens happen on all ranks so the record must be shared.
		t.Fatal("missing POSIX shared record")
	}
	// Two-phase: total bytes equal, each POSIX transfer is stripe-sized
	// (1 MiB), all aligned.
	if got := prec.C("POSIX_BYTES_WRITTEN"); got != 8<<20 {
		t.Errorf("POSIX_BYTES_WRITTEN = %d, want 8MiB", got)
	}
	if got := prec.C("POSIX_WRITES"); got != 8 {
		t.Errorf("POSIX_WRITES = %d, want 8 stripe-sized transfers", got)
	}
	if got := prec.C("POSIX_FILE_NOT_ALIGNED"); got != 0 {
		t.Errorf("collective writes should be aligned, FILE_NOT_ALIGNED = %d", got)
	}
}

func TestStdioCounters(t *testing.T) {
	s := newTestSim(1)
	f := s.Open("/scratch/log.txt", 0, STDIO, nil)
	f.WriteAt(0, 0, 100)
	f.WriteAt(0, 100, 100)
	f.Fsync(0)
	f.Close()
	log := s.Finalize()
	rec := log.Module(darshan.ModuleSTDIO).Find("/scratch/log.txt", 0)
	if rec == nil {
		t.Fatal("missing STDIO record")
	}
	if rec.C("STDIO_OPENS") != 1 || rec.C("STDIO_WRITES") != 2 {
		t.Errorf("STDIO opens/writes = %d/%d, want 1/2", rec.C("STDIO_OPENS"), rec.C("STDIO_WRITES"))
	}
	if rec.C("STDIO_BYTES_WRITTEN") != 200 {
		t.Errorf("STDIO_BYTES_WRITTEN = %d, want 200", rec.C("STDIO_BYTES_WRITTEN"))
	}
	if rec.C("STDIO_FLUSHES") != 1 {
		t.Errorf("STDIO_FLUSHES = %d, want 1", rec.C("STDIO_FLUSHES"))
	}
}

func TestLustreModuleRecords(t *testing.T) {
	s := newTestSim(2)
	lay := &Layout{StripeSize: 4 << 20, StripeWidth: 8}
	f := s.OpenShared("/scratch/striped.dat", POSIX, false, lay)
	f.WriteAt(0, 0, 1024)
	log := s.Finalize()
	rec := log.Module(darshan.ModuleLustre).Find("/scratch/striped.dat", darshan.SharedRank)
	if rec == nil {
		t.Fatal("missing LUSTRE record")
	}
	if rec.C("LUSTRE_STRIPE_SIZE") != 4<<20 {
		t.Errorf("STRIPE_SIZE = %d, want 4MiB", rec.C("LUSTRE_STRIPE_SIZE"))
	}
	if rec.C("LUSTRE_STRIPE_WIDTH") != 8 {
		t.Errorf("STRIPE_WIDTH = %d, want 8", rec.C("LUSTRE_STRIPE_WIDTH"))
	}
	if rec.C("LUSTRE_OSTS") != 16 {
		t.Errorf("LUSTRE_OSTS = %d, want 16", rec.C("LUSTRE_OSTS"))
	}
	// OST IDs 0..7 present and distinct.
	seen := map[int64]bool{}
	for i := 0; i < 8; i++ {
		id := rec.C(lustreOSTName(i))
		if seen[id] {
			t.Errorf("duplicate OST id %d", id)
		}
		seen[id] = true
	}
}

func lustreOSTName(i int) string {
	return "LUSTRE_OST_ID_" + string(rune('0'+i))
}

func TestNonLustreFileHasNoLustreRecord(t *testing.T) {
	s := New(Config{Seed: 1, NProcs: 1,
		ExtraMounts: []darshan.Mount{{Point: "/home", FSType: "nfs"}}})
	f := s.Open("/home/user/cfg.ini", 0, POSIX, nil)
	f.ReadAt(0, 0, 512)
	log := s.Finalize()
	if log.Module(darshan.ModuleLustre).Find("/home/user/cfg.ini", darshan.SharedRank) != nil {
		t.Error("non-Lustre file must not appear in the LUSTRE module")
	}
	prec := log.Module(darshan.ModulePOSIX).Find("/home/user/cfg.ini", 0)
	if prec.FSType != "nfs" {
		t.Errorf("FSType = %q, want nfs", prec.FSType)
	}
	if prec.C("POSIX_FILE_ALIGNMENT") != 4096 {
		t.Errorf("non-Lustre alignment = %d, want 4096", prec.C("POSIX_FILE_ALIGNMENT"))
	}
}

func TestOSTByteAccounting(t *testing.T) {
	s := New(Config{Seed: 1, NProcs: 1,
		FS: LustreConfig{MountPoint: "/scratch", NumOSTs: 4, DefaultStripeSize: 1 << 20, DefaultStripeWidth: 1, PerOSTBandwidth: 1e9}})
	lay := &Layout{StripeSize: 1 << 20, StripeWidth: 2, StripeOffset: 0}
	f := s.Open("/scratch/w2.dat", 0, POSIX, lay)
	f.WriteAt(0, 0, 4<<20) // 4 stripes alternate between OST 0 and 1
	bytes := s.OSTBytes()
	if bytes[0] != 2<<20 || bytes[1] != 2<<20 {
		t.Errorf("OST bytes = %v, want 2MiB on OSTs 0 and 1", bytes)
	}
	if bytes[2] != 0 || bytes[3] != 0 {
		t.Errorf("OSTs 2,3 should be idle, got %v", bytes)
	}
	s.Finalize()
}

func TestSmallIOCostsMoreThanLargeIO(t *testing.T) {
	run := func(xfer int64) float64 {
		s := New(Config{Seed: 9, NProcs: 1})
		f := s.Open("/scratch/c.dat", 0, POSIX, nil)
		total := int64(16 << 20)
		for off := int64(0); off < total; off += xfer {
			f.WriteAt(0, off, xfer)
		}
		log := s.Finalize()
		return log.Job.RunTime
	}
	small := run(4 << 10)
	large := run(4 << 20)
	if small <= large {
		t.Errorf("small transfers (%.3fs) should be slower than large (%.3fs)", small, large)
	}
}

func TestStripeWidthSpeedsUpLargeIO(t *testing.T) {
	run := func(width int) float64 {
		s := New(Config{Seed: 9, NProcs: 1})
		lay := &Layout{StripeSize: 1 << 20, StripeWidth: width}
		f := s.Open("/scratch/w.dat", 0, POSIX, lay)
		for i := 0; i < 16; i++ {
			f.WriteAt(0, int64(i)*(8<<20), 8<<20)
		}
		log := s.Finalize()
		return log.Job.RunTime
	}
	narrow := run(1)
	wide := run(8)
	if wide >= narrow {
		t.Errorf("wide striping (%.3fs) should beat width-1 (%.3fs) for large I/O", wide, narrow)
	}
}

func TestFinalizeLogRoundTrips(t *testing.T) {
	s := newTestSim(4)
	WriteShared(s, "/scratch/a.dat", MPIColl, nil, 8<<20, 1<<20)
	FilePerProcessWrite(s, "/scratch/fpp.%d.dat", POSIX, nil, 1<<20, 1<<16)
	ConfigRead(s, "/scratch/run.cfg")
	log := s.Finalize()

	if err := log.Validate(); err != nil {
		t.Fatalf("generated log fails validation: %v", err)
	}
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, log); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := darshan.Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(back.ModuleList()) != len(log.ModuleList()) {
		t.Errorf("module lists differ after round trip")
	}
	if _, err := darshan.TextString(log); err != nil {
		t.Fatalf("TextString: %v", err)
	}
}

func TestMetadataStorm(t *testing.T) {
	s := newTestSim(2)
	MetadataStorm(s, "/scratch/meta", 5, 3)
	log := s.Finalize()
	md := log.Module(darshan.ModulePOSIX)
	if got := md.SumC("POSIX_STATS"); got != 2*5*3 {
		t.Errorf("total stats = %d, want 30", got)
	}
	if got := md.SumC("POSIX_OPENS"); got != 10 {
		t.Errorf("total opens = %d, want 10", got)
	}
	if md.SumF("POSIX_F_META_TIME") <= 0 {
		t.Error("metadata time should accumulate")
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() string {
		s := New(Config{Seed: 11, NProcs: 4, UsesMPI: true})
		f := s.OpenShared("/scratch/d.dat", POSIX, false, nil)
		RandomReads(s, f, 10, 4096, 1<<20)
		log := s.Finalize()
		text, err := darshan.TextString(log)
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	if gen() != gen() {
		t.Error("same seed must produce byte-identical logs")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("bad rank", func() {
		s := newTestSim(2)
		s.Open("/scratch/x", 5, POSIX, nil)
	})
	assertPanics("op after finalize", func() {
		s := newTestSim(1)
		s.Finalize()
		s.Open("/scratch/x", 0, POSIX, nil)
	})
	assertPanics("collective on posix file", func() {
		s := newTestSim(2)
		f := s.OpenShared("/scratch/x", POSIX, false, nil)
		f.CollectiveWrite(0, 1024)
	})
	assertPanics("negative size", func() {
		s := newTestSim(1)
		f := s.Open("/scratch/x", 0, POSIX, nil)
		f.WriteAt(0, 0, -1)
	})
}
