package iosim

import (
	"math/rand"
	"testing"

	"ioagent/internal/darshan"
)

// randomWorkload scripts an arbitrary but valid mix of operations and
// returns the finalized log plus the ground-truth byte totals.
func randomWorkload(seed int64) (*darshan.Log, int64, int64, *Sim) {
	rng := rand.New(rand.NewSource(seed))
	nprocs := 1 + rng.Intn(8)
	s := New(Config{Seed: seed, NProcs: nprocs, UsesMPI: true})
	var wrote, read int64

	nfiles := 1 + rng.Intn(4)
	for fi := 0; fi < nfiles; fi++ {
		shared := rng.Intn(2) == 0 && nprocs > 1
		lay := &Layout{StripeSize: 1 << uint(17+rng.Intn(4)), StripeWidth: 1 + rng.Intn(4)}
		var f *File
		path := "/scratch/rand/f" + string(rune('a'+fi))
		if shared {
			f = s.OpenShared(path, POSIX, false, lay)
		} else {
			f = s.Open(path, rng.Intn(nprocs), POSIX, lay)
		}
		ops := 1 + rng.Intn(40)
		for i := 0; i < ops; i++ {
			rank := 0
			if shared {
				rank = rng.Intn(nprocs)
			} else {
				for r := range f.ranks {
					rank = r
				}
			}
			size := int64(1 + rng.Intn(1<<20))
			off := rng.Int63n(64 << 20)
			if rng.Intn(2) == 0 {
				f.WriteAt(rank, off, size)
				wrote += size
			} else {
				f.ReadAt(rank, off, size)
				read += size
			}
		}
		f.Close()
	}
	return s.Finalize(), read, wrote, s
}

// TestByteConservation: the log's byte totals equal the bytes the workload
// actually moved, and per-OST accounting matches the Lustre traffic.
func TestByteConservation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		log, read, wrote, sim := randomWorkload(seed)
		gotRead, gotWrote := log.TotalBytes()
		if gotRead != read || gotWrote != wrote {
			t.Fatalf("seed %d: totals (%d,%d), want (%d,%d)", seed, gotRead, gotWrote, read, wrote)
		}
		var ost int64
		for _, b := range sim.OSTBytes() {
			ost += b
		}
		if ost != read+wrote {
			t.Fatalf("seed %d: OST bytes %d != moved bytes %d", seed, ost, read+wrote)
		}
	}
}

// TestHistogramMatchesOpCounts: per record, the access-size histogram sums
// to the operation count for each direction.
func TestHistogramMatchesOpCounts(t *testing.T) {
	buckets := []string{"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
		"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS"}
	for seed := int64(1); seed <= 10; seed++ {
		log, _, _, _ := randomWorkload(seed)
		for _, r := range log.Module(darshan.ModulePOSIX).Records {
			var hr, hw int64
			for _, b := range buckets {
				hr += r.C("POSIX_SIZE_READ_" + b)
				hw += r.C("POSIX_SIZE_WRITE_" + b)
			}
			if hr != r.C("POSIX_READS") {
				t.Fatalf("seed %d %s: read histogram %d != POSIX_READS %d", seed, r.Name, hr, r.C("POSIX_READS"))
			}
			if hw != r.C("POSIX_WRITES") {
				t.Fatalf("seed %d %s: write histogram %d != POSIX_WRITES %d", seed, r.Name, hw, r.C("POSIX_WRITES"))
			}
		}
	}
}

// TestSequentialOrderingInvariants: consecutive accesses are a subset of
// sequential accesses, and neither exceeds the op count.
func TestSequentialOrderingInvariants(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		log, _, _, _ := randomWorkload(seed)
		for _, r := range log.Module(darshan.ModulePOSIX).Records {
			for _, dir := range []string{"READ", "WRITE"} {
				ops := r.C("POSIX_" + dir + "S")
				seq := r.C("POSIX_SEQ_" + dir + "S")
				consec := r.C("POSIX_CONSEC_" + dir + "S")
				if consec > seq {
					t.Fatalf("seed %d %s: CONSEC %d > SEQ %d", seed, r.Name, consec, seq)
				}
				if seq > ops {
					t.Fatalf("seed %d %s: SEQ %d > ops %d", seed, r.Name, seq, ops)
				}
			}
		}
	}
}

// TestAccessCountersBounded: top-4 access counts sum to at most the op
// count, and ACCESS1 is the most frequent.
func TestAccessCountersBounded(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		log, _, _, _ := randomWorkload(seed)
		for _, r := range log.Module(darshan.ModulePOSIX).Records {
			ops := r.C("POSIX_READS") + r.C("POSIX_WRITES")
			var sum int64
			var prev int64 = 1 << 62
			for i := 1; i <= 4; i++ {
				c := r.C("POSIX_ACCESS" + string(rune('0'+i)) + "_COUNT")
				if c > prev {
					t.Fatalf("seed %d %s: ACCESS counts not sorted", seed, r.Name)
				}
				prev = c
				sum += c
			}
			if sum > ops {
				t.Fatalf("seed %d %s: access counts %d exceed ops %d", seed, r.Name, sum, ops)
			}
		}
	}
}

// TestTimestampsMonotone: per record, start timestamps do not exceed end
// timestamps and all timing counters are non-negative.
func TestTimestampsMonotone(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		log, _, _, _ := randomWorkload(seed)
		for _, m := range log.ModuleList() {
			for _, r := range log.Modules[m].Records {
				for name, v := range r.FCounters {
					if v < 0 {
						t.Fatalf("seed %d: %s %s negative (%g)", seed, r.Name, name, v)
					}
				}
				prefix := m.CounterPrefix()
				for _, phase := range []string{"OPEN", "READ", "WRITE", "CLOSE"} {
					start := r.F(prefix + "_F_" + phase + "_START_TIMESTAMP")
					end := r.F(prefix + "_F_" + phase + "_END_TIMESTAMP")
					if start > 0 && end > 0 && end < start {
						t.Fatalf("seed %d: %s %s phase ends (%g) before start (%g)", seed, r.Name, phase, end, start)
					}
				}
			}
		}
	}
}

// TestSharedReductionConservesBytes: reduced shared records carry exactly
// the bytes all ranks moved.
func TestSharedReductionConservesBytes(t *testing.T) {
	s := New(Config{Seed: 77, NProcs: 6, UsesMPI: true})
	f := s.OpenShared("/scratch/sum.dat", POSIX, false, nil)
	var want int64
	for rank := 0; rank < 6; rank++ {
		size := int64(1000 * (rank + 1))
		f.WriteAt(rank, int64(rank)*(1<<20), size)
		want += size
	}
	log := s.Finalize()
	rec := log.Module(darshan.ModulePOSIX).Find("/scratch/sum.dat", darshan.SharedRank)
	if rec == nil {
		t.Fatal("missing reduced record")
	}
	if got := rec.C("POSIX_BYTES_WRITTEN"); got != want {
		t.Errorf("reduced bytes %d, want %d", got, want)
	}
	if rec.C("POSIX_SLOWEST_RANK_BYTES") < rec.C("POSIX_FASTEST_RANK_BYTES") {
		// Byte counts belong to the time-slowest/fastest ranks, so no
		// strict ordering is required — but both must be one of the
		// per-rank volumes.
		valid := map[int64]bool{}
		for rank := 0; rank < 6; rank++ {
			valid[int64(1000*(rank+1))] = true
		}
		if !valid[rec.C("POSIX_SLOWEST_RANK_BYTES")] || !valid[rec.C("POSIX_FASTEST_RANK_BYTES")] {
			t.Errorf("fastest/slowest bytes not from the per-rank set: %d/%d",
				rec.C("POSIX_FASTEST_RANK_BYTES"), rec.C("POSIX_SLOWEST_RANK_BYTES"))
		}
	}
}
