package iosim

import "fmt"

// This file provides reusable workload pattern helpers built on the Sim
// primitives. The TraceBench generators compose these into the benchmark
// scenarios (Simple-Bench micro-patterns, IO500 phases, application-shaped
// runs).

// WriteShared writes total bytes to a shared file in xfer-byte transfers,
// block-partitioned across all ranks. iface selects the I/O path; with
// MPIColl the writes use two-phase collective buffering.
func WriteShared(s *Sim, path string, iface Iface, layout *Layout, total, xfer int64) *File {
	f := s.OpenShared(path, iface, iface == MPIColl, layout)
	n := s.NProcs()
	perRank := total / int64(n)
	if iface == MPIColl {
		for off := int64(0); off < perRank; off += xfer {
			sz := min64(xfer, perRank-off)
			f.CollectiveWrite(off*int64(n), sz)
		}
		return f
	}
	for rank := 0; rank < n; rank++ {
		base := int64(rank) * perRank
		for off := int64(0); off < perRank; off += xfer {
			sz := min64(xfer, perRank-off)
			f.WriteAt(rank, base+off, sz)
		}
	}
	return f
}

// ReadShared mirrors WriteShared for reads.
func ReadShared(s *Sim, path string, iface Iface, layout *Layout, total, xfer int64) *File {
	f := s.OpenShared(path, iface, iface == MPIColl, layout)
	n := s.NProcs()
	perRank := total / int64(n)
	if iface == MPIColl {
		for off := int64(0); off < perRank; off += xfer {
			sz := min64(xfer, perRank-off)
			f.CollectiveRead(off*int64(n), sz)
		}
		return f
	}
	for rank := 0; rank < n; rank++ {
		base := int64(rank) * perRank
		for off := int64(0); off < perRank; off += xfer {
			sz := min64(xfer, perRank-off)
			f.ReadAt(rank, base+off, sz)
		}
	}
	return f
}

// FilePerProcessWrite writes one private file per rank (N:N pattern), each
// perRank bytes in xfer transfers. pathPattern must contain one %d verb for
// the rank.
func FilePerProcessWrite(s *Sim, pathPattern string, iface Iface, layout *Layout, perRank, xfer int64) []*File {
	files := make([]*File, s.NProcs())
	for rank := 0; rank < s.NProcs(); rank++ {
		f := s.Open(fmt.Sprintf(pathPattern, rank), rank, iface, layout)
		for off := int64(0); off < perRank; off += xfer {
			f.WriteAt(rank, off, min64(xfer, perRank-off))
		}
		files[rank] = f
	}
	return files
}

// FilePerProcessRead reads one private file per rank.
func FilePerProcessRead(s *Sim, pathPattern string, iface Iface, layout *Layout, perRank, xfer int64) []*File {
	files := make([]*File, s.NProcs())
	for rank := 0; rank < s.NProcs(); rank++ {
		f := s.Open(fmt.Sprintf(pathPattern, rank), rank, iface, layout)
		for off := int64(0); off < perRank; off += xfer {
			f.ReadAt(rank, off, min64(xfer, perRank-off))
		}
		files[rank] = f
	}
	return files
}

// RandomReads issues n reads of size bytes at pseudo-random offsets within
// [0, extent) from each rank of a shared file. Offsets intentionally jump
// backwards and forwards so the accesses classify as non-sequential.
func RandomReads(s *Sim, f *File, n int, size, extent int64) {
	if extent < size {
		extent = size
	}
	for rank := 0; rank < s.NProcs(); rank++ {
		for i := 0; i < n; i++ {
			off := s.rng.Int63n(extent - size + 1)
			f.ReadAt(rank, off, size)
		}
	}
}

// RandomWrites issues n writes of size bytes at pseudo-random offsets from
// each rank.
func RandomWrites(s *Sim, f *File, n int, size, extent int64) {
	if extent < size {
		extent = size
	}
	for rank := 0; rank < s.NProcs(); rank++ {
		for i := 0; i < n; i++ {
			off := s.rng.Int63n(extent - size + 1)
			f.WriteAt(rank, off, size)
		}
	}
}

// StridedReads issues n reads of size bytes per rank with a fixed stride
// between consecutive accesses (a classic interleaved block pattern).
func StridedReads(s *Sim, f *File, rank int, n int, start, size, stride int64) {
	off := start
	for i := 0; i < n; i++ {
		f.ReadAt(rank, off, size)
		off += stride
	}
}

// RereadSame reads the same region repeatedly (repetitive data access).
func RereadSame(s *Sim, f *File, rank int, n int, off, size int64) {
	for i := 0; i < n; i++ {
		f.ReadAt(rank, off, size)
	}
}

// MetadataStorm issues a burst of stat calls plus open/close churn on many
// small files from every rank, producing a high metadata load signature.
func MetadataStorm(s *Sim, dir string, filesPerRank, statsPerFile int) {
	for rank := 0; rank < s.NProcs(); rank++ {
		for i := 0; i < filesPerRank; i++ {
			path := fmt.Sprintf("%s/meta.%d.%d", dir, rank, i)
			f := s.Open(path, rank, POSIX, nil)
			for j := 0; j < statsPerFile; j++ {
				f.Stat(rank)
			}
			f.WriteAt(rank, 0, 64)
			f.Close(rank)
		}
	}
}

// ConfigRead models the benign STDIO usage every job has: rank 0 reads a
// small configuration file through the buffered layer.
func ConfigRead(s *Sim, path string) {
	f := s.Open(path, 0, STDIO, nil)
	f.ReadAt(0, 0, 2048)
	f.Close(0)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
