package iosim

import "ioagent/internal/darshan"

// Iface selects the I/O interface used for an open file.
type Iface int

const (
	// POSIX issues plain read/write/lseek calls.
	POSIX Iface = iota
	// STDIO issues fread/fwrite through the C buffered-I/O layer.
	STDIO
	// MPIIndep issues MPI_File_read/write (independent).
	MPIIndep
	// MPIColl issues MPI_File_read_all/write_all (collective, two-phase).
	MPIColl
)

// String names the interface for error messages and reports.
func (i Iface) String() string {
	switch i {
	case POSIX:
		return "POSIX"
	case STDIO:
		return "STDIO"
	case MPIIndep:
		return "MPI-IO (independent)"
	case MPIColl:
		return "MPI-IO (collective)"
	}
	return "unknown"
}

// LustreConfig describes the simulated parallel file system.
type LustreConfig struct {
	MountPoint         string // e.g. "/scratch"
	NumOSTs            int    // object storage targets available
	NumMDTs            int    // metadata targets
	DefaultStripeSize  int64  // bytes; upstream default is 1 MiB
	DefaultStripeWidth int    // OSTs per file; upstream default is 1
	// PerOSTBandwidth is the sustained per-OST data rate in bytes/second
	// used by the time model.
	PerOSTBandwidth float64
}

// DefaultLustre mirrors a typical production scratch system with
// conservative default striping (the configuration behind the paper's
// AMReX case study: stripe width 1, stripe size 1 MiB).
func DefaultLustre() LustreConfig {
	return LustreConfig{
		MountPoint:         "/scratch",
		NumOSTs:            16,
		NumMDTs:            1,
		DefaultStripeSize:  1 << 20,
		DefaultStripeWidth: 1,
		PerOSTBandwidth:    500e6, // 500 MB/s per OST
	}
}

// Layout is the per-file Lustre striping layout.
type Layout struct {
	StripeSize   int64
	StripeWidth  int
	StripeOffset int // first OST index; -1 lets the simulator choose
}

// Config parameterizes a simulated job.
type Config struct {
	Seed      int64
	Exe       string
	JobID     int64
	UID       int
	StartTime int64 // unix seconds; zero selects a fixed epoch
	NProcs    int
	// UsesMPI distinguishes true MPI jobs from multi-process jobs that
	// launch without MPI (the Multi-Process Without MPI issue label).
	UsesMPI bool
	FS      LustreConfig
	// ExtraMounts adds non-Lustre mounts (e.g. /home nfs) to the header.
	ExtraMounts []darshan.Mount
	// MetaLatency is the cost of one metadata operation in seconds.
	MetaLatency float64
	// OpLatency is the fixed per-data-operation latency in seconds; it is
	// what makes many small transfers slow.
	OpLatency float64
	// RankSkew optionally multiplies operation costs per rank to model
	// stragglers; len must be NProcs when non-nil.
	RankSkew []float64
	// EnableDXT additionally records per-operation extended-tracing events
	// (offset, length, start/end) retrievable via Sim.DXT. Mirrors
	// enabling Darshan eXtended Tracing on a real system; off by default,
	// as in production, because of its overhead.
	EnableDXT bool
}

// withDefaults fills zero fields with production-plausible values.
func (c Config) withDefaults() Config {
	if c.Exe == "" {
		c.Exe = "/apps/bin/app.x"
	}
	if c.JobID == 0 {
		c.JobID = 4242
	}
	if c.UID == 0 {
		c.UID = 1001
	}
	if c.StartTime == 0 {
		c.StartTime = 1735689600 // fixed epoch for reproducibility
	}
	if c.NProcs == 0 {
		c.NProcs = 1
	}
	if c.FS.MountPoint == "" {
		c.FS = DefaultLustre()
	}
	if c.FS.NumOSTs <= 0 {
		c.FS.NumOSTs = 16
	}
	if c.FS.NumMDTs <= 0 {
		c.FS.NumMDTs = 1
	}
	if c.FS.DefaultStripeSize <= 0 {
		c.FS.DefaultStripeSize = 1 << 20
	}
	if c.FS.DefaultStripeWidth <= 0 {
		c.FS.DefaultStripeWidth = 1
	}
	if c.FS.PerOSTBandwidth <= 0 {
		c.FS.PerOSTBandwidth = 500e6
	}
	if c.MetaLatency <= 0 {
		c.MetaLatency = 300e-6
	}
	if c.OpLatency <= 0 {
		c.OpLatency = 50e-6
	}
	return c
}

// MemAlignment is the memory alignment Darshan records (bytes).
const MemAlignment = 4096
