package iosim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ioagent/internal/darshan"
)

// Finalize performs the shared-file reduction (as darshan-core does at
// MPI_Finalize), derives the common-access-size and stride counters, fills
// the job header, and returns the completed log. The simulator must not be
// used afterwards.
func (s *Sim) Finalize() *darshan.Log {
	if s.finalized {
		panic("iosim: Finalize called twice")
	}
	s.finalized = true

	log := darshan.NewLog()
	log.Job = darshan.Job{
		UID:       s.cfg.UID,
		JobID:     s.cfg.JobID,
		StartTime: s.cfg.StartTime,
		NProcs:    s.cfg.NProcs,
		Exe:       s.cfg.Exe,
		Metadata:  map[string]string{"lib_ver": "3.4.4"},
	}
	if s.cfg.UsesMPI {
		log.Job.Metadata["mpi"] = "1"
	}
	var maxClock float64
	for _, c := range s.clock {
		if c > maxClock {
			maxClock = c
		}
	}
	log.Job.RunTime = maxClock + 0.5 // startup/teardown slack
	log.Job.EndTime = log.Job.StartTime + int64(math.Ceil(log.Job.RunTime))

	log.Job.Mounts = append(log.Job.Mounts, darshan.Mount{Point: s.cfg.FS.MountPoint, FSType: "lustre"})
	log.Job.Mounts = append(log.Job.Mounts, s.cfg.ExtraMounts...)

	// Group record states by (module, path).
	type group struct {
		mod   darshan.ModuleID
		path  string
		ranks []*recState
	}
	groups := make(map[string]*group)
	var order []string
	for k, st := range s.recs {
		gk := fmt.Sprintf("%d|%s", k.mod, k.path)
		g, ok := groups[gk]
		if !ok {
			g = &group{mod: k.mod, path: k.path}
			groups[gk] = g
			order = append(order, gk)
		}
		g.ranks = append(g.ranks, st)
		_ = st
	}
	sort.Strings(order)

	for _, gk := range order {
		g := groups[gk]
		sort.Slice(g.ranks, func(i, j int) bool { return g.ranks[i].rec.Rank < g.ranks[j].rec.Rank })
		var rec *darshan.FileRecord
		if len(g.ranks) == 1 {
			st := g.ranks[0]
			finishAccessCounters(g.mod, st.rec, st.accesses, st.strides)
			rec = st.rec
		} else {
			rec = reduceShared(g.mod, g.ranks)
		}
		log.Module(g.mod).Records = append(log.Module(g.mod).Records, rec)
	}
	for _, m := range log.ModuleList() {
		log.Modules[m].SortRecords()
	}
	return log
}

// reduceShared merges per-rank partial records of one file into a single
// shared record with rank == SharedRank, mirroring Darshan's shared-file
// reduction: additive counters sum, MAX counters take the maximum, START
// timestamps take the minimum, END timestamps the maximum, and the
// fastest/slowest-rank and variance statistics are computed across ranks.
func reduceShared(mod darshan.ModuleID, ranks []*recState) *darshan.FileRecord {
	base := ranks[0].rec
	out := darshan.NewFileRecord(base.Name, darshan.SharedRank)
	out.RecordID = base.RecordID
	out.MountPt = base.MountPt
	out.FSType = base.FSType

	accesses := make(map[int64]int64)
	strides := make(map[int64]int64)

	for _, st := range ranks {
		for name, v := range st.rec.Counters {
			switch reduceKind(name) {
			case kindSum:
				out.AddC(name, v)
			case kindMax:
				out.MaxC(name, v)
			case kindFirst:
				if _, ok := out.Counters[name]; !ok {
					out.SetC(name, v)
				}
			}
		}
		for name, v := range st.rec.FCounters {
			switch reduceKindF(name) {
			case kindSum:
				out.AddF(name, v)
			case kindMax:
				out.MaxF(name, v)
			case kindMin:
				if cur, ok := out.FCounters[name]; !ok || v < cur {
					out.SetF(name, v)
				}
			}
		}
		for sz, n := range st.accesses {
			accesses[sz] += n
		}
		for sd, n := range st.strides {
			strides[sd] += n
		}
	}

	// Fastest / slowest rank by per-rank I/O time, with byte volumes.
	prefix := mod.CounterPrefix()
	if mod != darshan.ModuleLustre {
		fastest, slowest := ranks[0], ranks[0]
		var times, bytes []float64
		for _, st := range ranks {
			if st.ioTime < fastest.ioTime {
				fastest = st
			}
			if st.ioTime > slowest.ioTime {
				slowest = st
			}
			times = append(times, st.ioTime)
			bytes = append(bytes, float64(recBytes(prefix, st.rec)))
		}
		out.SetC(prefix+"_FASTEST_RANK", int64(fastest.rec.Rank))
		out.SetC(prefix+"_FASTEST_RANK_BYTES", recBytes(prefix, fastest.rec))
		out.SetC(prefix+"_SLOWEST_RANK", int64(slowest.rec.Rank))
		out.SetC(prefix+"_SLOWEST_RANK_BYTES", recBytes(prefix, slowest.rec))
		out.SetF(prefix+"_F_FASTEST_RANK_TIME", fastest.ioTime)
		out.SetF(prefix+"_F_SLOWEST_RANK_TIME", slowest.ioTime)
		out.SetF(prefix+"_F_VARIANCE_RANK_TIME", variance(times))
		out.SetF(prefix+"_F_VARIANCE_RANK_BYTES", variance(bytes))
	}

	finishAccessCounters(mod, out, accesses, strides)
	return out
}

func recBytes(prefix string, rec *darshan.FileRecord) int64 {
	return rec.C(prefix+"_BYTES_READ") + rec.C(prefix+"_BYTES_WRITTEN")
}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return v / float64(len(xs))
}

type reduceOp int

const (
	kindSum reduceOp = iota
	kindMax
	kindMin
	kindFirst
)

func reduceKind(name string) reduceOp {
	switch {
	case strings.Contains(name, "_MAX_BYTE_"):
		return kindMax
	case strings.HasSuffix(name, "_MODE"),
		strings.HasSuffix(name, "_MEM_ALIGNMENT"),
		strings.HasSuffix(name, "_FILE_ALIGNMENT"),
		strings.HasPrefix(name, "LUSTRE_"):
		return kindFirst
	default:
		return kindSum
	}
}

func reduceKindF(name string) reduceOp {
	switch {
	case strings.HasSuffix(name, "_START_TIMESTAMP"):
		return kindMin
	case strings.HasSuffix(name, "_END_TIMESTAMP"),
		strings.Contains(name, "_F_MAX_"):
		return kindMax
	default:
		return kindSum
	}
}

// finishAccessCounters derives the top-4 common access sizes and strides.
func finishAccessCounters(mod darshan.ModuleID, rec *darshan.FileRecord, accesses, strides map[int64]int64) {
	prefix := mod.CounterPrefix()
	if mod == darshan.ModuleLustre || mod == darshan.ModuleSTDIO {
		return // these modules record no ACCESS/STRIDE counters
	}
	fill := func(kind string, m map[int64]int64) {
		top := topK(m, 4)
		for i, e := range top {
			rec.SetC(fmt.Sprintf("%s_%s%d_%s", prefix, kind, i+1, kind), e.val)
			rec.SetC(fmt.Sprintf("%s_%s%d_COUNT", prefix, kind, i+1), e.count)
		}
	}
	fill("ACCESS", accesses)
	if mod == darshan.ModulePOSIX {
		fill("STRIDE", strides)
	}
}

type kv struct {
	val   int64
	count int64
}

func topK(m map[int64]int64, k int) []kv {
	out := make([]kv, 0, len(m))
	for v, c := range m {
		out = append(out, kv{v, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].val < out[j].val
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
