package iosim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
)

// Sim is a simulated parallel job under Darshan instrumentation. Create one
// with New, script file operations, then call Finalize to obtain the log.
type Sim struct {
	cfg Config
	rng *rand.Rand

	clock    []float64 // per-rank elapsed seconds
	ostBytes []int64   // per-OST traffic (for tests and server-usage ground truth)
	nextOST  int       // round-robin allocator for stripe offsets

	files map[string]*File
	recs  map[recKey]*recState

	dxtEvents []dxt.Event
	dxtSeq    []int // per-rank segment counter

	finalized bool
}

type opKind int

const (
	opNone opKind = iota
	opRead
	opWrite
)

type recKey struct {
	mod  darshan.ModuleID
	path string
	rank int
}

// recState wraps an in-progress Darshan record with the bookkeeping needed
// to derive the top-4 access-size and stride counters at Finalize time.
type recState struct {
	rec      *darshan.FileRecord
	accesses map[int64]int64 // access size -> count
	strides  map[int64]int64 // stride -> count
	ioTime   float64         // rank time spent in data ops on this record
}

// cursor tracks a rank's position within an open file.
type cursor struct {
	pos     int64
	lastEnd int64
	lastOp  opKind
	started bool
}

// File is an open simulated file.
type File struct {
	s      *Sim
	path   string
	iface  Iface
	layout Layout
	mount  darshan.Mount
	cur    map[int]*cursor
	ranks  map[int]bool
	closed bool
}

// New creates a simulator from cfg. The zero values of cfg are filled with
// defaults (see Config).
func New(cfg Config) *Sim {
	cfg = cfg.withDefaults()
	if cfg.RankSkew != nil && len(cfg.RankSkew) != cfg.NProcs {
		panic(fmt.Sprintf("iosim: RankSkew has %d entries for %d procs", len(cfg.RankSkew), cfg.NProcs))
	}
	return &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		clock:    make([]float64, cfg.NProcs),
		ostBytes: make([]int64, cfg.FS.NumOSTs),
		files:    make(map[string]*File),
		recs:     make(map[recKey]*recState),
		dxtSeq:   make([]int, cfg.NProcs),
	}
}

// DXT returns the extended-tracing events recorded so far (nil unless
// Config.EnableDXT was set). The returned trace is a snapshot.
func (s *Sim) DXT() *dxt.Trace {
	if !s.cfg.EnableDXT {
		return nil
	}
	t := &dxt.Trace{NProcs: s.cfg.NProcs, Events: append([]dxt.Event(nil), s.dxtEvents...)}
	t.Sort()
	return t
}

// recordDXT appends one extended-tracing event when DXT is enabled.
func (s *Sim) recordDXT(module string, rank int, file string, kind opKind, off, size int64, start, end float64) {
	if !s.cfg.EnableDXT {
		return
	}
	op := dxt.OpWrite
	if kind == opRead {
		op = dxt.OpRead
	}
	s.dxtEvents = append(s.dxtEvents, dxt.Event{
		Module: module, Rank: rank, File: file, Op: op,
		Seq: s.dxtSeq[rank], Offset: off, Length: size, Start: start, End: end,
	})
	s.dxtSeq[rank]++
}

// NProcs returns the number of simulated processes.
func (s *Sim) NProcs() int { return s.cfg.NProcs }

// FS returns the file-system configuration in effect.
func (s *Sim) FS() LustreConfig { return s.cfg.FS }

// OSTBytes returns a copy of the per-OST byte counters accumulated so far
// (ground truth for server-usage tests; Darshan itself records only the OST
// list per file).
func (s *Sim) OSTBytes() []int64 {
	out := make([]int64, len(s.ostBytes))
	copy(out, s.ostBytes)
	return out
}

// mountFor resolves the mount table entry for a path.
func (s *Sim) mountFor(path string) darshan.Mount {
	if strings.HasPrefix(path, s.cfg.FS.MountPoint) {
		return darshan.Mount{Point: s.cfg.FS.MountPoint, FSType: "lustre"}
	}
	for _, m := range s.cfg.ExtraMounts {
		if strings.HasPrefix(path, m.Point) {
			return m
		}
	}
	return darshan.Mount{Point: "/", FSType: "ext4"}
}

// Open opens path on a single rank through the given interface. A nil
// layout uses the file system defaults. Opening the same path again returns
// the existing File and registers the new rank.
func (s *Sim) Open(path string, rank int, iface Iface, layout *Layout) *File {
	return s.open(path, []int{rank}, iface, layout, false)
}

// OpenShared opens path on every rank. When the interface is MPI-IO and
// collective is true the open itself is collective (MPI_File_open on the
// world communicator).
func (s *Sim) OpenShared(path string, iface Iface, collective bool, layout *Layout) *File {
	ranks := make([]int, s.cfg.NProcs)
	for i := range ranks {
		ranks[i] = i
	}
	return s.open(path, ranks, iface, layout, collective)
}

func (s *Sim) open(path string, ranks []int, iface Iface, layout *Layout, collective bool) *File {
	if s.finalized {
		panic("iosim: operation after Finalize")
	}
	f, ok := s.files[path]
	if !ok {
		lay := Layout{
			StripeSize:   s.cfg.FS.DefaultStripeSize,
			StripeWidth:  s.cfg.FS.DefaultStripeWidth,
			StripeOffset: -1,
		}
		if layout != nil {
			lay = *layout
			if lay.StripeSize <= 0 {
				lay.StripeSize = s.cfg.FS.DefaultStripeSize
			}
			if lay.StripeWidth <= 0 {
				lay.StripeWidth = s.cfg.FS.DefaultStripeWidth
			}
		}
		if lay.StripeWidth > s.cfg.FS.NumOSTs {
			lay.StripeWidth = s.cfg.FS.NumOSTs
		}
		if lay.StripeOffset < 0 {
			lay.StripeOffset = s.nextOST % s.cfg.FS.NumOSTs
			s.nextOST += lay.StripeWidth
		}
		f = &File{
			s: s, path: path, iface: iface, layout: lay,
			mount: s.mountFor(path),
			cur:   make(map[int]*cursor),
			ranks: make(map[int]bool),
		}
		s.files[path] = f
	}
	for _, r := range ranks {
		s.checkRank(r)
		if !f.ranks[r] {
			f.ranks[r] = true
			f.cur[r] = &cursor{}
		}
		s.recordOpen(f, r, iface, collective)
	}
	return f
}

func (s *Sim) checkRank(rank int) {
	if rank < 0 || rank >= s.cfg.NProcs {
		panic(fmt.Sprintf("iosim: rank %d out of range [0,%d)", rank, s.cfg.NProcs))
	}
}

// state returns (creating if needed) the record state for a module record.
func (s *Sim) state(mod darshan.ModuleID, f *File, rank int) *recState {
	k := recKey{mod, f.path, rank}
	st, ok := s.recs[k]
	if !ok {
		rec := darshan.NewFileRecord(f.path, rank)
		rec.MountPt = f.mount.Point
		rec.FSType = f.mount.FSType
		st = &recState{
			rec:      rec,
			accesses: make(map[int64]int64),
			strides:  make(map[int64]int64),
		}
		s.recs[k] = st
		if mod == darshan.ModulePOSIX {
			rec.SetC("POSIX_MEM_ALIGNMENT", MemAlignment)
			rec.SetC("POSIX_FILE_ALIGNMENT", s.fileAlignment(f))
			rec.SetC("POSIX_MODE", 0644)
		}
	}
	return st
}

func (s *Sim) fileAlignment(f *File) int64 {
	if f.mount.FSType == "lustre" {
		return f.layout.StripeSize
	}
	return 4096
}

// advance charges rank's clock with cost seconds (scaled by skew) and
// returns the interval [start, end) in job-relative seconds.
func (s *Sim) advance(rank int, cost float64) (start, end float64) {
	if s.cfg.RankSkew != nil {
		cost *= s.cfg.RankSkew[rank]
	}
	start = s.clock[rank]
	s.clock[rank] = start + cost
	return start, s.clock[rank]
}

// metaCost returns a jittered metadata latency.
func (s *Sim) metaCost() float64 {
	return s.cfg.MetaLatency * (0.8 + 0.4*s.rng.Float64())
}

// dataCost models one data transfer of size bytes on file f. Effective
// bandwidth scales with the number of distinct stripes (hence OSTs) the
// transfer covers, capped by the file's stripe width; random (non-
// sequential) transfers pay an extra seek penalty.
func (s *Sim) dataCost(f *File, size int64, sequential bool) float64 {
	stripes := int64(1)
	if f.layout.StripeSize > 0 {
		stripes = (size + f.layout.StripeSize - 1) / f.layout.StripeSize
	}
	par := int64(f.layout.StripeWidth)
	if stripes < par {
		par = stripes
	}
	if par < 1 {
		par = 1
	}
	bw := s.cfg.FS.PerOSTBandwidth * float64(par)
	cost := s.cfg.OpLatency + float64(size)/bw
	if !sequential {
		cost += 4 * s.cfg.OpLatency // seek penalty
	}
	return cost * (0.9 + 0.2*s.rng.Float64())
}

// chargeOSTs attributes size bytes starting at off to the OSTs holding the
// covered stripes.
func (s *Sim) chargeOSTs(f *File, off, size int64) {
	if f.mount.FSType != "lustre" || size <= 0 {
		return
	}
	ss := f.layout.StripeSize
	w := int64(f.layout.StripeWidth)
	if ss <= 0 || w <= 0 {
		return
	}
	for cur := off; cur < off+size; {
		stripe := cur / ss
		ost := (int64(f.layout.StripeOffset) + stripe%w) % int64(s.cfg.FS.NumOSTs)
		chunkEnd := (stripe + 1) * ss
		if chunkEnd > off+size {
			chunkEnd = off + size
		}
		s.ostBytes[ost] += chunkEnd - cur
		cur = chunkEnd
	}
}

func (s *Sim) recordOpen(f *File, rank int, iface Iface, collective bool) {
	start, end := s.advance(rank, s.metaCost())
	switch iface {
	case POSIX:
		st := s.state(darshan.ModulePOSIX, f, rank)
		st.rec.AddC("POSIX_OPENS", 1)
		st.rec.AddF("POSIX_F_META_TIME", end-start)
		stampOpen(st.rec, "POSIX", start, end)
	case STDIO:
		st := s.state(darshan.ModuleSTDIO, f, rank)
		st.rec.AddC("STDIO_OPENS", 1)
		st.rec.AddF("STDIO_F_META_TIME", end-start)
		stampOpen(st.rec, "STDIO", start, end)
	case MPIIndep, MPIColl:
		st := s.state(darshan.ModuleMPIIO, f, rank)
		if collective || iface == MPIColl {
			st.rec.AddC("MPIIO_COLL_OPENS", 1)
		} else {
			st.rec.AddC("MPIIO_INDEP_OPENS", 1)
		}
		st.rec.AddF("MPIIO_F_META_TIME", end-start)
		stampOpen(st.rec, "MPIIO", start, end)
		// MPI-IO opens the file underneath via POSIX.
		pst := s.state(darshan.ModulePOSIX, f, rank)
		pst.rec.AddC("POSIX_OPENS", 1)
		stampOpen(pst.rec, "POSIX", start, end)
	}
	if f.mount.FSType == "lustre" {
		s.lustreRecord(f)
	}
}

// stampOpen sets first-open / last-close style timestamps.
func stampOpen(rec *darshan.FileRecord, prefix string, start, end float64) {
	name := prefix + "_F_OPEN_START_TIMESTAMP"
	if v, ok := rec.FCounters[name]; !ok || start < v {
		rec.SetF(name, start)
	}
	rec.MaxF(prefix+"_F_OPEN_END_TIMESTAMP", end)
}

// lustreRecord materializes the LUSTRE module record for a striped file.
func (s *Sim) lustreRecord(f *File) {
	st := s.state(darshan.ModuleLustre, f, darshan.SharedRank)
	rec := st.rec
	rec.SetC("LUSTRE_OSTS", int64(s.cfg.FS.NumOSTs))
	rec.SetC("LUSTRE_MDTS", int64(s.cfg.FS.NumMDTs))
	rec.SetC("LUSTRE_STRIPE_OFFSET", int64(f.layout.StripeOffset))
	rec.SetC("LUSTRE_STRIPE_SIZE", f.layout.StripeSize)
	rec.SetC("LUSTRE_STRIPE_WIDTH", int64(f.layout.StripeWidth))
	w := f.layout.StripeWidth
	if w > darshan.MaxLustreOSTs {
		w = darshan.MaxLustreOSTs
	}
	for i := 0; i < w; i++ {
		ost := (f.layout.StripeOffset + i) % s.cfg.FS.NumOSTs
		rec.SetC(fmt.Sprintf("LUSTRE_OST_ID_%d", i), int64(ost))
	}
}

// Stat issues a stat/fstat metadata call from rank.
func (f *File) Stat(rank int) {
	f.ensureOpen(rank)
	start, end := f.s.advance(rank, f.s.metaCost())
	switch f.iface {
	case STDIO:
		st := f.s.state(darshan.ModuleSTDIO, f, rank)
		st.rec.AddF("STDIO_F_META_TIME", end-start)
	default:
		st := f.s.state(darshan.ModulePOSIX, f, rank)
		st.rec.AddC("POSIX_STATS", 1)
		st.rec.AddF("POSIX_F_META_TIME", end-start)
	}
}

// Fsync flushes rank's writes to stable storage.
func (f *File) Fsync(rank int) {
	f.ensureOpen(rank)
	start, end := f.s.advance(rank, 3*f.s.metaCost())
	switch f.iface {
	case STDIO:
		st := f.s.state(darshan.ModuleSTDIO, f, rank)
		st.rec.AddC("STDIO_FLUSHES", 1)
		st.rec.AddF("STDIO_F_META_TIME", end-start)
	default:
		st := f.s.state(darshan.ModulePOSIX, f, rank)
		st.rec.AddC("POSIX_FSYNCS", 1)
		st.rec.AddF("POSIX_F_META_TIME", end-start)
	}
}

// ReadAt reads size bytes at offset off from rank.
func (f *File) ReadAt(rank int, off, size int64) {
	f.dataOp(rank, opRead, off, size)
}

// WriteAt writes size bytes at offset off from rank.
func (f *File) WriteAt(rank int, off, size int64) {
	f.dataOp(rank, opWrite, off, size)
}

// Read reads size bytes at the rank's current position.
func (f *File) Read(rank int, size int64) {
	f.dataOp(rank, opRead, f.cursorFor(rank).pos, size)
}

// Write writes size bytes at the rank's current position.
func (f *File) Write(rank int, size int64) {
	f.dataOp(rank, opWrite, f.cursorFor(rank).pos, size)
}

func (f *File) cursorFor(rank int) *cursor {
	c, ok := f.cur[rank]
	if !ok {
		panic(fmt.Sprintf("iosim: rank %d has not opened %s", rank, f.path))
	}
	return c
}

func (f *File) ensureOpen(rank int) {
	if f.closed {
		panic("iosim: operation on closed file " + f.path)
	}
	f.cursorFor(rank)
}

func (f *File) dataOp(rank int, kind opKind, off, size int64) {
	f.ensureOpen(rank)
	if size < 0 || off < 0 {
		panic("iosim: negative offset or size")
	}
	switch f.iface {
	case POSIX:
		f.posixOp(rank, kind, off, size, 1)
	case STDIO:
		f.stdioOp(rank, kind, off, size)
	case MPIIndep:
		f.mpiOp(rank, kind, off, size, false)
	case MPIColl:
		f.mpiOp(rank, kind, off, size, true)
	}
}

// posixOp folds one POSIX transfer into the counters. weight scales the
// operation count (used by collective aggregation which issues one POSIX op
// on behalf of several MPI-IO calls).
func (f *File) posixOp(rank int, kind opKind, off, size int64, weight int64) {
	s := f.s
	st := s.state(darshan.ModulePOSIX, f, rank)
	rec := st.rec
	c := f.cursorFor(rank)

	sequential := c.started && off >= c.lastEnd
	consecutive := c.started && off == c.lastEnd
	if c.started && off != c.lastEnd {
		rec.AddC("POSIX_SEEKS", 1)
		if stride := off - c.lastEnd; stride != 0 {
			st.strides[abs64(stride)]++
		}
	}
	if c.started && c.lastOp != opNone && c.lastOp != kind {
		rec.AddC("POSIX_RW_SWITCHES", 1)
	}

	cost := s.dataCost(f, size, sequential || !c.started)
	start, end := s.advance(rank, cost)
	st.ioTime += end - start
	s.chargeOSTs(f, off, size)
	s.recordDXT("X_POSIX", rank, f.path, kind, off, size, start, end)

	bucket := darshan.SizeBucketIndex(size)
	align := rec.C("POSIX_FILE_ALIGNMENT")
	if align > 0 && off%align != 0 {
		rec.AddC("POSIX_FILE_NOT_ALIGNED", weight)
	}
	if size%8 != 0 {
		rec.AddC("POSIX_MEM_NOT_ALIGNED", weight)
	}
	st.accesses[size] += weight

	switch kind {
	case opRead:
		rec.AddC("POSIX_READS", weight)
		rec.AddC("POSIX_BYTES_READ", size*weight)
		rec.MaxC("POSIX_MAX_BYTE_READ", off+size-1)
		if consecutive {
			rec.AddC("POSIX_CONSEC_READS", weight)
		}
		if sequential {
			rec.AddC("POSIX_SEQ_READS", weight)
		}
		rec.AddC(posixHistName("READ", bucket), weight)
		rec.AddF("POSIX_F_READ_TIME", end-start)
		rec.MaxF("POSIX_F_MAX_READ_TIME", end-start)
		if v, ok := rec.FCounters["POSIX_F_READ_START_TIMESTAMP"]; !ok || start < v {
			rec.SetF("POSIX_F_READ_START_TIMESTAMP", start)
		}
		rec.MaxF("POSIX_F_READ_END_TIMESTAMP", end)
	case opWrite:
		rec.AddC("POSIX_WRITES", weight)
		rec.AddC("POSIX_BYTES_WRITTEN", size*weight)
		rec.MaxC("POSIX_MAX_BYTE_WRITTEN", off+size-1)
		if consecutive {
			rec.AddC("POSIX_CONSEC_WRITES", weight)
		}
		if sequential {
			rec.AddC("POSIX_SEQ_WRITES", weight)
		}
		rec.AddC(posixHistName("WRITE", bucket), weight)
		rec.AddF("POSIX_F_WRITE_TIME", end-start)
		rec.MaxF("POSIX_F_MAX_WRITE_TIME", end-start)
		if v, ok := rec.FCounters["POSIX_F_WRITE_START_TIMESTAMP"]; !ok || start < v {
			rec.SetF("POSIX_F_WRITE_START_TIMESTAMP", start)
		}
		rec.MaxF("POSIX_F_WRITE_END_TIMESTAMP", end)
	}

	c.pos = off + size
	c.lastEnd = off + size
	c.lastOp = kind
	c.started = true
}

func (f *File) stdioOp(rank int, kind opKind, off, size int64) {
	s := f.s
	st := s.state(darshan.ModuleSTDIO, f, rank)
	rec := st.rec
	c := f.cursorFor(rank)

	if c.started && off != c.lastEnd {
		rec.AddC("STDIO_SEEKS", 1)
	}
	sequential := !c.started || off >= c.lastEnd
	cost := s.dataCost(f, size, sequential)
	start, end := s.advance(rank, cost)
	st.ioTime += end - start
	s.chargeOSTs(f, off, size)
	s.recordDXT("X_STDIO", rank, f.path, kind, off, size, start, end)
	st.accesses[size]++

	switch kind {
	case opRead:
		rec.AddC("STDIO_READS", 1)
		rec.AddC("STDIO_BYTES_READ", size)
		rec.MaxC("STDIO_MAX_BYTE_READ", off+size-1)
		rec.AddF("STDIO_F_READ_TIME", end-start)
		if v, ok := rec.FCounters["STDIO_F_READ_START_TIMESTAMP"]; !ok || start < v {
			rec.SetF("STDIO_F_READ_START_TIMESTAMP", start)
		}
		rec.MaxF("STDIO_F_READ_END_TIMESTAMP", end)
	case opWrite:
		rec.AddC("STDIO_WRITES", 1)
		rec.AddC("STDIO_BYTES_WRITTEN", size)
		rec.MaxC("STDIO_MAX_BYTE_WRITTEN", off+size-1)
		rec.AddF("STDIO_F_WRITE_TIME", end-start)
		if v, ok := rec.FCounters["STDIO_F_WRITE_START_TIMESTAMP"]; !ok || start < v {
			rec.SetF("STDIO_F_WRITE_START_TIMESTAMP", start)
		}
		rec.MaxF("STDIO_F_WRITE_END_TIMESTAMP", end)
	}

	c.pos = off + size
	c.lastEnd = off + size
	c.lastOp = kind
	c.started = true
}

// mpiOp records the MPI-IO layer counters and models the underlying POSIX
// traffic. Independent operations map 1:1 onto POSIX transfers. Collective
// operations are recorded per-rank at the MPI-IO layer here and aggregated
// into two-phase POSIX transfers by CollectiveWrite/CollectiveRead; a
// collective op issued through this path (single rank) degenerates to an
// independent POSIX transfer.
func (f *File) mpiOp(rank int, kind opKind, off, size int64, collective bool) {
	s := f.s
	st := s.state(darshan.ModuleMPIIO, f, rank)
	rec := st.rec

	bucket := darshan.SizeBucketIndex(size)
	st.accesses[size]++
	switch kind {
	case opRead:
		if collective {
			rec.AddC("MPIIO_COLL_READS", 1)
		} else {
			rec.AddC("MPIIO_INDEP_READS", 1)
		}
		rec.AddC("MPIIO_BYTES_READ", size)
		rec.AddC(mpiioHistName("READ_AGG", bucket), 1)
	case opWrite:
		if collective {
			rec.AddC("MPIIO_COLL_WRITES", 1)
		} else {
			rec.AddC("MPIIO_INDEP_WRITES", 1)
		}
		rec.AddC("MPIIO_BYTES_WRITTEN", size)
		rec.AddC(mpiioHistName("WRITE_AGG", bucket), 1)
	}

	f.posixOp(rank, kind, off, size, 1)

	// Attribute the (already advanced) transfer time to the MPI-IO layer
	// as well so per-layer timing stays consistent.
	pst := s.state(darshan.ModulePOSIX, f, rank)
	switch kind {
	case opRead:
		rec.SetF("MPIIO_F_READ_TIME", pst.rec.F("POSIX_F_READ_TIME"))
	case opWrite:
		rec.SetF("MPIIO_F_WRITE_TIME", pst.rec.F("POSIX_F_WRITE_TIME"))
	}
}

// CollectiveWrite performs one MPI_File_write_all across every rank of the
// file's communicator: each rank contributes size bytes at
// base + rank*size. Two-phase collective buffering is modeled by having
// min(stripeWidth, nprocs) aggregator ranks issue large stripe-aligned
// POSIX writes covering the combined extent.
func (f *File) CollectiveWrite(base, sizePerRank int64) {
	f.collectiveOp(opWrite, base, sizePerRank)
}

// CollectiveRead performs one MPI_File_read_all across every rank (see
// CollectiveWrite).
func (f *File) CollectiveRead(base, sizePerRank int64) {
	f.collectiveOp(opRead, base, sizePerRank)
}

func (f *File) collectiveOp(kind opKind, base, sizePerRank int64) {
	s := f.s
	if f.iface != MPIColl {
		panic("iosim: collective op on non-collective file " + f.path)
	}
	n := int64(s.cfg.NProcs)
	total := n * sizePerRank
	bucket := darshan.SizeBucketIndex(sizePerRank)

	// MPI-IO layer: every rank records one collective call.
	for rank := 0; rank < s.cfg.NProcs; rank++ {
		f.ensureOpen(rank)
		st := s.state(darshan.ModuleMPIIO, f, rank)
		st.accesses[sizePerRank]++
		switch kind {
		case opRead:
			st.rec.AddC("MPIIO_COLL_READS", 1)
			st.rec.AddC("MPIIO_BYTES_READ", sizePerRank)
			st.rec.AddC(mpiioHistName("READ_AGG", bucket), 1)
		case opWrite:
			st.rec.AddC("MPIIO_COLL_WRITES", 1)
			st.rec.AddC("MPIIO_BYTES_WRITTEN", sizePerRank)
			st.rec.AddC(mpiioHistName("WRITE_AGG", bucket), 1)
		}
	}

	// Two-phase exchange: a small synchronization cost on every rank.
	for rank := 0; rank < s.cfg.NProcs; rank++ {
		s.advance(rank, s.cfg.OpLatency)
	}

	// Aggregators issue the POSIX transfers in stripe-sized chunks.
	aggs := f.layout.StripeWidth
	if aggs < 1 {
		aggs = 1
	}
	if aggs > s.cfg.NProcs {
		aggs = s.cfg.NProcs
	}
	chunk := f.layout.StripeSize
	if chunk <= 0 {
		chunk = 1 << 20
	}
	var off int64
	for i := 0; off < total; i++ {
		sz := chunk
		if off+sz > total {
			sz = total - off
		}
		agg := i % aggs
		f.posixOp(agg, kind, base+off, sz, 1)
		off += sz
	}
	// MPI-IO time mirrors the slowest aggregator's layer time.
	for rank := 0; rank < aggs; rank++ {
		pst := s.state(darshan.ModulePOSIX, f, rank)
		mst := s.state(darshan.ModuleMPIIO, f, rank)
		switch kind {
		case opRead:
			mst.rec.SetF("MPIIO_F_READ_TIME", pst.rec.F("POSIX_F_READ_TIME"))
		case opWrite:
			mst.rec.SetF("MPIIO_F_WRITE_TIME", pst.rec.F("POSIX_F_WRITE_TIME"))
		}
	}
}

// Close closes the file on the given ranks (all registered ranks when none
// are specified).
func (f *File) Close(ranks ...int) {
	if f.closed {
		return
	}
	if len(ranks) == 0 {
		for r := range f.ranks {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks) // deterministic close order (and rng draw order)
	}
	for _, rank := range ranks {
		f.cursorFor(rank)
		start, end := f.s.advance(rank, f.s.metaCost())
		switch f.iface {
		case STDIO:
			st := f.s.state(darshan.ModuleSTDIO, f, rank)
			st.rec.AddF("STDIO_F_META_TIME", end-start)
			st.rec.MaxF("STDIO_F_CLOSE_END_TIMESTAMP", end)
			if v, ok := st.rec.FCounters["STDIO_F_CLOSE_START_TIMESTAMP"]; !ok || start < v {
				st.rec.SetF("STDIO_F_CLOSE_START_TIMESTAMP", start)
			}
		case MPIIndep, MPIColl:
			st := f.s.state(darshan.ModuleMPIIO, f, rank)
			st.rec.AddF("MPIIO_F_META_TIME", end-start)
			st.rec.MaxF("MPIIO_F_CLOSE_END_TIMESTAMP", end)
			pst := f.s.state(darshan.ModulePOSIX, f, rank)
			pst.rec.MaxF("POSIX_F_CLOSE_END_TIMESTAMP", end)
		default:
			st := f.s.state(darshan.ModulePOSIX, f, rank)
			st.rec.AddF("POSIX_F_META_TIME", end-start)
			st.rec.MaxF("POSIX_F_CLOSE_END_TIMESTAMP", end)
			if v, ok := st.rec.FCounters["POSIX_F_CLOSE_START_TIMESTAMP"]; !ok || start < v {
				st.rec.SetF("POSIX_F_CLOSE_START_TIMESTAMP", start)
			}
		}
	}
}

func posixHistName(op string, bucket int) string {
	return "POSIX_SIZE_" + op + "_" + bucketSuffix(bucket)
}

func mpiioHistName(op string, bucket int) string {
	return "MPIIO_SIZE_" + op + "_" + bucketSuffix(bucket)
}

func bucketSuffix(i int) string {
	suffixes := []string{
		"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
		"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
	}
	return suffixes[i]
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
