// Package iosim simulates the I/O activity of parallel HPC applications and
// produces Darshan logs, standing in for the real instrumented runs the
// paper collected at NERSC — the repository is offline and deterministic,
// so simulated workloads with known planted issues replace machine access.
//
// A Sim models an MPI job (N processes) running against a simulated Lustre
// file system (configurable OST count, per-file stripe size/width). Callers
// script file operations through four interfaces — POSIX, STDIO, and MPI-IO
// independent/collective — and the simulator folds every operation into the
// exact counter set the Darshan runtime would record: operation counts, byte
// volumes, access-size histograms, sequential/consecutive classification,
// alignment violations, common access sizes and strides, per-rank timing
// with fastest/slowest/variance statistics, and Lustre striping records.
//
// The time model is intentionally simple but honest about the effects the
// diagnosis labels care about: data transfers cost bytes/bandwidth where the
// effective bandwidth scales with the stripe width actually covered by the
// transfer, per-operation latency penalizes small and random I/O, metadata
// operations cost a fixed latency, and per-rank skew produces load
// imbalance. MPI-IO collective operations model two-phase I/O: aggregator
// ranks issue large, stripe-aligned POSIX transfers on behalf of the
// communicator.
package iosim
