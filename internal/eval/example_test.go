package eval_test

import (
	"fmt"
	"strings"

	"ioagent/internal/eval"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

// DefaultTools is the paper's four-way Table IV lineup.
func ExampleDefaultTools() {
	for _, tool := range eval.DefaultTools(llm.NewSim()) {
		fmt.Println(tool.Name())
	}
	// Output:
	// Drishti
	// ION
	// IOAgent-gpt-4o
	// IOAgent-llama-3.1-70b
}

// Every evaluated system implements Tool; the heuristic baseline needs no
// model and diagnoses a simulated small-write workload deterministically.
func ExampleTool() {
	sim := iosim.New(iosim.Config{Seed: 7, NProcs: 4, UsesMPI: true, Exe: "/apps/demo/app.x"})
	f := sim.OpenShared("/scratch/demo.dat", iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 16; i++ {
			f.WriteAt(rank, (int64(rank)*16+i)*4096, 4096)
		}
	}
	f.Close()

	var tool eval.Tool = eval.DrishtiTool{}
	text, err := tool.Diagnose(sim.Finalize())
	fmt.Println(err == nil, strings.Contains(text, "write"))
	// Output: true true
}
