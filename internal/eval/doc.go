// Package eval is the Table IV harness: it runs every diagnosis tool over
// TraceBench, submits the four outputs per trace to the LLM judge under the
// three criteria, and aggregates normalized scores per source and overall
// (Eqs. (1)-(2)).
//
// The Tool interface is the pluggable surface: DrishtiTool adapts the
// heuristic baseline, IONTool the one-shot LLM baseline, and IOAgentTool
// the full pipeline at a chosen model tier; DefaultTools returns the
// paper's four-way lineup. A Runner fans the suite out across a bounded
// number of concurrent trace evaluations — every tool, criterion, and
// judge permutation for one trace stays on one goroutine, so per-tool
// cost accounting remains race-free.
//
// Scores are normalized per Eq. (1) (each trace's four ranks map to
// [0,1]) and averaged per source and overall per Eq. (2); Result.Format
// renders the familiar Table IV grid. cmd/ioeval is the CLI entry point,
// and BenchmarkTableIV_FullEvaluation (repo root) regenerates the table
// as a benchmark.
package eval
