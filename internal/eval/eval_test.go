package eval

import (
	"math"
	"strings"
	"testing"

	"ioagent/internal/judge"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
)

// TestTableIVShape runs the full Table IV evaluation and asserts the
// paper's qualitative results hold:
//
//   - overall average ordering: IOAgent-gpt-4o > IOAgent-llama > Drishti > ION;
//   - IOAgent-llama wins Simple-Bench on average (the paper's observation
//     that the frontier model over-details basic cases);
//   - every overall average lands within 0.12 of the paper's value.
func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	client := llm.NewSim()
	runner := NewRunner(client)
	res, err := runner.Run(tracebench.Suite())
	if err != nil {
		t.Fatal(err)
	}

	const (
		gpt     = "IOAgent-gpt-4o"
		lla     = "IOAgent-llama-3.1-70b"
		dri     = "Drishti"
		ion     = "ION"
		avg     = "average"
		overall = "Overall"
	)
	ord := res.Ordering()
	if ord[0] != gpt || ord[3] != ion {
		t.Errorf("overall ordering = %v; want IOAgent-gpt-4o first, ION last", ord)
	}
	get := func(c, tool, src string) float64 { return res.Scores[c][tool][src] }
	if !(get(avg, gpt, overall) > get(avg, lla, overall)) {
		t.Errorf("gpt-4o IOAgent (%.3f) should beat llama IOAgent (%.3f) overall",
			get(avg, gpt, overall), get(avg, lla, overall))
	}
	if !(get(avg, lla, overall) > get(avg, dri, overall)) {
		t.Errorf("llama IOAgent (%.3f) should beat Drishti (%.3f)",
			get(avg, lla, overall), get(avg, dri, overall))
	}
	if !(get(avg, dri, overall) > get(avg, ion, overall)) {
		t.Errorf("Drishti (%.3f) should beat ION (%.3f)",
			get(avg, dri, overall), get(avg, ion, overall))
	}

	// The Simple-Bench crossover: llama IOAgent leads the frontier model.
	if !(get(avg, lla, tracebench.SimpleBench) > get(avg, gpt, tracebench.SimpleBench)) {
		t.Errorf("llama IOAgent should lead on Simple-Bench: %.3f vs %.3f",
			get(avg, lla, tracebench.SimpleBench), get(avg, gpt, tracebench.SimpleBench))
	}

	// Quantitative proximity to the paper's overall averages.
	paper := map[string]float64{dri: 0.447, ion: 0.383, gpt: 0.632, lla: 0.550}
	for tool, want := range paper {
		got := get(avg, tool, overall)
		if math.Abs(got-want) > 0.12 {
			t.Errorf("%s overall average = %.3f, paper %.3f (|Δ| > 0.12)", tool, got, want)
		}
	}

	// Scores are normalized ranks: per (criterion, source) the four tools
	// must average 0.5 (ranks 1..4 sum to 10).
	for _, c := range judge.Criteria {
		var sum float64
		for _, tool := range res.Tools {
			sum += get(c, tool, overall)
		}
		if math.Abs(sum-2.0) > 1e-9 {
			t.Errorf("criterion %s: overall scores sum to %.3f, want 2.0", c, sum)
		}
	}
}

func TestFormatContainsAllCells(t *testing.T) {
	client := llm.NewSim()
	runner := NewRunner(client)
	traces := tracebench.BySource(tracebench.Suite(), tracebench.SimpleBench)[:3]
	res, err := runner.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"TABLE IV", "Accuracy", "Utility", "Interpretability", "Average", "Drishti", "ION", "IOAgent-gpt-4o", "IOAgent-llama-3.1-70b"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestToolsProduceParseableOutput(t *testing.T) {
	client := llm.NewSim()
	tr := tracebench.Suite()[0]
	for _, tool := range DefaultTools(client) {
		text, err := tool.Diagnose(tr.Log())
		if err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		if len(llm.ClaimedLabels(text)) == 0 {
			t.Errorf("%s produced no discernible findings on %s", tool.Name(), tr.Name)
		}
	}
}

func TestRunnerDeterministic(t *testing.T) {
	traces := tracebench.BySource(tracebench.Suite(), tracebench.SimpleBench)[:2]
	run := func() float64 {
		runner := NewRunner(llm.NewSim())
		res, err := runner.Run(traces)
		if err != nil {
			t.Fatal(err)
		}
		return res.Scores["average"]["IOAgent-gpt-4o"]["Overall"]
	}
	if run() != run() {
		t.Error("evaluation must be deterministic")
	}
}

// TestAugmentationAblation: removing the judge's anti-bias augmentations
// (the Fig. 4 ablation) changes the measured scores — the biases are live
// and the augmentations are load-bearing.
func TestAugmentationAblation(t *testing.T) {
	traces := tracebench.BySource(tracebench.Suite(), tracebench.SimpleBench)[:4]
	run := func(aug judge.Augmentations) map[string]float64 {
		runner := NewRunner(llm.NewSim())
		runner.Judge.Augment = aug
		res, err := runner.Run(traces)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, tool := range res.Tools {
			out[tool] = res.Scores["average"][tool]["Overall"]
		}
		return out
	}
	with := run(judge.All())
	without := run(judge.None())
	diff := 0.0
	for tool, w := range with {
		d := w - without[tool]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if diff < 0.02 {
		t.Errorf("disabling augmentations barely moved scores (total |Δ| = %.3f); bias model inert?", diff)
	}
}

// TestEvalSubsetsIndependent: per-source normalized scores fall in [0,1].
func TestEvalScoreBounds(t *testing.T) {
	traces := tracebench.BySource(tracebench.Suite(), tracebench.RealApps)[:3]
	runner := NewRunner(llm.NewSim())
	res, err := runner.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	for c, byTool := range res.Scores {
		for tool, bySrc := range byTool {
			for src, v := range bySrc {
				if v < 0 || v > 1 {
					t.Errorf("score out of range: %s/%s/%s = %g", c, tool, src, v)
				}
			}
		}
	}
}
