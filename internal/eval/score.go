package eval

import (
	"fmt"

	"ioagent/internal/issue"
	"ioagent/internal/judge"
	"ioagent/internal/llm"
)

// nullReport is the fixed judging baseline for ScoreDiagnosis: the
// diagnosis that claims nothing is wrong. Scoring against this null
// hypothesis mirrors internal/fleet/semcache's confidence gate, so
// scenario verdicts and reuse-gate verdicts share one scale.
const nullReport = "No significant I/O performance issues detected."

// ScoreDiagnosis rates one diagnosis text against a known expected label
// set, blending label agreement and an LLM judge verdict equally:
//
//	score = 0.5·F1(expected, claimed) + 0.5·judge
//
// where judge maps the diagnosis's mean rank against the null report
// (rank 1 — always wins — scores 1.0; rank 2 scores 0.0). The result is
// in [0, 1]. This is the per-scenario verdict internal/scenario's matrix
// and cmd/fleetbench compare against committed baselines.
func ScoreDiagnosis(client llm.Client, model string, expected issue.Set, diagnosisText string) (float64, error) {
	_, _, f1 := issue.F1(expected, llm.ClaimedLabels(diagnosisText))

	j := &judge.Judge{
		Client:       client,
		Model:        model,
		Permutations: 2,
		Augment:      judge.All(),
	}
	entries := []judge.Entry{
		{Tool: "diagnosis", Text: diagnosisText},
		{Tool: "baseline", Text: nullReport},
	}
	ranks, err := j.MeanRanks(entries, judge.Accuracy, expected)
	if err != nil {
		return 0, fmt.Errorf("eval: score diagnosis: %w", err)
	}
	js := 2 - ranks[0]
	if js < 0 {
		js = 0
	}
	if js > 1 {
		js = 1
	}
	return 0.5*f1 + 0.5*js, nil
}
