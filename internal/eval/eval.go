package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
	"ioagent/internal/ioagent"
	"ioagent/internal/ion"
	"ioagent/internal/judge"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
)

// Tool is one diagnosis system under evaluation.
type Tool interface {
	Name() string
	Diagnose(log *darshan.Log) (string, error)
}

// DrishtiTool adapts the heuristic baseline.
type DrishtiTool struct{}

// Name implements Tool.
func (DrishtiTool) Name() string { return "Drishti" }

// Diagnose implements Tool.
func (DrishtiTool) Diagnose(log *darshan.Log) (string, error) {
	return drishti.Analyze(log).Format(), nil
}

// IONTool adapts the one-shot LLM baseline.
type IONTool struct{ D *ion.Diagnoser }

// NewIONTool builds the ION baseline on gpt-4o (the paper's backbone).
func NewIONTool(client llm.Client) IONTool {
	return IONTool{D: ion.New(client, llm.GPT4o)}
}

// Name implements Tool.
func (t IONTool) Name() string { return "ION" }

// Diagnose implements Tool.
func (t IONTool) Diagnose(log *darshan.Log) (string, error) { return t.D.Diagnose(log) }

// IOAgentTool adapts the full pipeline with a configurable backbone model.
type IOAgentTool struct {
	Agent *ioagent.Agent
	Label string
}

// NewIOAgentTool builds an IOAgent instance labeled after its model.
func NewIOAgentTool(client llm.Client, model, cheap string) IOAgentTool {
	short := strings.TrimSuffix(model, "-sim")
	short = strings.TrimSuffix(short, "-instruct")
	return IOAgentTool{
		Agent: ioagent.New(client, ioagent.Options{Model: model, CheapModel: cheap}),
		Label: "IOAgent-" + short,
	}
}

// Name implements Tool.
func (t IOAgentTool) Name() string { return t.Label }

// Diagnose implements Tool.
func (t IOAgentTool) Diagnose(log *darshan.Log) (string, error) {
	res, err := t.Agent.Diagnose(log)
	if err != nil {
		return "", err
	}
	return res.Text, nil
}

// DefaultTools returns the paper's four evaluated systems.
func DefaultTools(client llm.Client) []Tool {
	return []Tool{
		DrishtiTool{},
		NewIONTool(client),
		NewIOAgentTool(client, llm.GPT4o, llm.GPT4oMini),
		NewIOAgentTool(client, llm.Llama31, llm.Llama3),
	}
}

// Result is the full Table IV: normalized scores indexed by criterion
// (plus "average"), tool name, and source (plus "Overall").
type Result struct {
	Tools   []string
	Sources []string
	// Scores[criterion][tool][source] in [0,1].
	Scores map[string]map[string]map[string]float64
}

// Runner executes the evaluation.
type Runner struct {
	Client llm.Client
	Judge  *judge.Judge
	Tools  []Tool
	// Parallelism caps concurrent traces (default 4).
	Parallelism int
}

// NewRunner wires the paper's configuration.
func NewRunner(client llm.Client) *Runner {
	return &Runner{Client: client, Judge: judge.New(client), Tools: DefaultTools(client)}
}

// Run evaluates all tools over the traces and aggregates Table IV.
func (r *Runner) Run(traces []*tracebench.Trace) (*Result, error) {
	type traceScores struct {
		source string
		// score[criterion][tool] = 4 - meanRank
		score map[string]map[string]float64
		err   error
	}
	par := r.Parallelism
	if par <= 0 {
		par = 4
	}
	sem := make(chan struct{}, par)
	results := make([]traceScores, len(traces))
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr *tracebench.Trace) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = r.evalTrace(tr)
		}(i, tr)
	}
	wg.Wait()

	for _, ts := range results {
		if ts.err != nil {
			return nil, ts.err
		}
	}

	out := &Result{Sources: append(append([]string{}, tracebench.Sources...), "Overall")}
	for _, t := range r.Tools {
		out.Tools = append(out.Tools, t.Name())
	}
	out.Scores = make(map[string]map[string]map[string]float64)

	criteria := append(append([]string{}, judge.Criteria...), "average")
	sums := map[string]map[string]map[string]float64{} // criterion/tool/source -> sum of scores
	counts := map[string]int{}                         // source -> #traces
	for _, c := range criteria {
		sums[c] = map[string]map[string]float64{}
		for _, t := range out.Tools {
			sums[c][t] = map[string]float64{}
		}
	}
	for _, ts := range results {
		counts[ts.source]++
		for _, c := range judge.Criteria {
			for tool, s := range ts.score[c] {
				sums[c][tool][ts.source] += s
			}
		}
	}

	for _, c := range judge.Criteria {
		out.Scores[c] = map[string]map[string]float64{}
		for _, tool := range out.Tools {
			out.Scores[c][tool] = map[string]float64{}
			var overallSum float64
			var overallN int
			for _, src := range tracebench.Sources {
				n := counts[src]
				out.Scores[c][tool][src] = judge.Normalize(sums[c][tool][src], n)
				overallSum += sums[c][tool][src]
				overallN += n
			}
			out.Scores[c][tool]["Overall"] = judge.Normalize(overallSum, overallN)
		}
	}
	// Average across the three criteria.
	out.Scores["average"] = map[string]map[string]float64{}
	for _, tool := range out.Tools {
		out.Scores["average"][tool] = map[string]float64{}
		for _, src := range out.Sources {
			var s float64
			for _, c := range judge.Criteria {
				s += out.Scores[c][tool][src]
			}
			out.Scores["average"][tool][src] = s / float64(len(judge.Criteria))
		}
	}
	return out, nil
}

func (r *Runner) evalTrace(tr *tracebench.Trace) (ts struct {
	source string
	score  map[string]map[string]float64
	err    error
}) {
	ts.source = tr.Source
	ts.score = map[string]map[string]float64{}
	log := tr.Log()

	entries := make([]judge.Entry, len(r.Tools))
	for i, tool := range r.Tools {
		text, err := tool.Diagnose(log)
		if err != nil {
			ts.err = fmt.Errorf("%s on %s: %w", tool.Name(), tr.Name, err)
			return ts
		}
		entries[i] = judge.Entry{Tool: tool.Name(), Text: text}
	}
	for _, c := range judge.Criteria {
		ranks, err := r.Judge.MeanRanks(entries, c, tr.Labels)
		if err != nil {
			ts.err = fmt.Errorf("judging %s/%s: %w", tr.Name, c, err)
			return ts
		}
		ts.score[c] = map[string]float64{}
		for i, mr := range ranks {
			ts.score[c][entries[i].Tool] = judge.Score(mr)
		}
	}
	return ts
}

// Format renders the result in the layout of the paper's Table IV.
func (res *Result) Format() string {
	var b strings.Builder
	criteria := append(append([]string{}, judge.Criteria...), "average")
	b.WriteString("TABLE IV: Performance Results for Diagnosis Tools on TraceBench Subsets\n")
	fmt.Fprintf(&b, "%-18s %-22s %13s %8s %18s %8s\n",
		"Metric", "Diagnosis Tool", "Simple-Bench", "IO500", "Real-Applications", "Overall")
	for _, c := range criteria {
		label := strings.ToUpper(c[:1]) + c[1:]
		for i, tool := range res.Tools {
			metric := ""
			if i == 0 {
				metric = label
			}
			fmt.Fprintf(&b, "%-18s %-22s %13.3f %8.3f %18.3f %8.3f\n",
				metric, tool,
				res.Scores[c][tool][tracebench.SimpleBench],
				res.Scores[c][tool][tracebench.IO500],
				res.Scores[c][tool][tracebench.RealApps],
				res.Scores[c][tool]["Overall"])
		}
	}
	return b.String()
}

// Ordering returns tool names sorted by overall average, best first.
func (res *Result) Ordering() []string {
	tools := append([]string(nil), res.Tools...)
	sort.Slice(tools, func(i, j int) bool {
		return res.Scores["average"][tools[i]]["Overall"] > res.Scores["average"][tools[j]]["Overall"]
	})
	return tools
}
