package knowledge_test

import (
	"fmt"

	"ioagent/internal/knowledge"
)

// The corpus mirrors the paper's 66-publication survey.
func ExampleCorpus() {
	fmt.Println(len(knowledge.Corpus()))
	// Output: 66
}

// Lookup resolves the citation keys that diagnosis reports emit back to
// their source documents — how chat grounds follow-up answers.
func ExampleLookup() {
	doc, ok := knowledge.Lookup("carns2011darshan")
	fmt.Println(ok, doc.Year, doc.Venue)
	// Output: true 2011 TOS
}

// BuildIndex embeds the whole corpus once; share the result (the fleet
// pool hands one index to every worker).
func ExampleBuildIndex() {
	ix := knowledge.BuildIndex()
	hits := ix.Search("small writes dominate the trace", 3)
	fmt.Println(ix.Len() >= 66, len(hits))
	// Output: true 3
}
