package knowledge

import (
	"sync"

	"ioagent/internal/vectordb"
)

// Doc is one surveyed source.
type Doc struct {
	Key   string // citation key, e.g. "wang2019smallio"
	Title string
	Venue string
	Year  int
	Text  string // digest of the work's findings
}

// Corpus returns the full 66-document corpus. The slice is freshly built on
// every call so callers may modify it.
func Corpus() []Doc {
	docs := make([]Doc, len(corpus))
	copy(docs, corpus)
	return docs
}

// Documents returns the corpus as vectordb documents, ready to index. The
// slice is freshly built on every call so callers may modify it.
func Documents() []vectordb.Document {
	docs := make([]vectordb.Document, len(corpus))
	for i, d := range corpus {
		docs[i] = vectordb.Document{Key: d.Key, Title: d.Title, Text: d.Text}
	}
	return docs
}

// BuildIndex indexes the full corpus with the paper's chunking settings
// (512-token chunks, overlap 20, cosine similarity).
func BuildIndex() *vectordb.Index {
	ix := vectordb.New(vectordb.Options{ChunkSize: 512, Overlap: 20})
	for _, d := range corpus {
		ix.Add(vectordb.Document{Key: d.Key, Title: d.Title, Text: d.Text})
	}
	return ix
}

// lookupOnce builds the key → document map exactly once; the corpus is
// immutable after init, so the map never invalidates.
var (
	lookupOnce sync.Once
	byKey      map[string]Doc
)

// Lookup returns the document with the given citation key in O(1): the key
// map is built once, not scanned per call.
func Lookup(key string) (Doc, bool) {
	lookupOnce.Do(func() {
		byKey = make(map[string]Doc, len(corpus))
		for _, d := range corpus {
			byKey[d.Key] = d
		}
	})
	d, ok := byKey[key]
	return d, ok
}

var corpus = []Doc{
	// ---- Small request sizes -------------------------------------------------
	{"yang2019smallwrite", "Characterizing Small-Write Behavior on Production Parallel File Systems", "IPDPS", 2019,
		"We analyze one year of Darshan logs from two production systems and find that jobs whose write request sizes fall predominantly under 100 KB achieve less than 15 percent of the attainable bandwidth. Small write requests amplify per-operation latency, inflate the number of RPCs to storage servers, and defeat server-side write-behind. Applications should aggregate small writes into buffers of at least 1 MB before flushing; jobs that batched writes into megabyte-scale transfers improved end-to-end write bandwidth by 4x to 11x. The fraction of accesses in the 0-100 and 100-1K histogram bins is the strongest single predictor of poor write efficiency."},
	{"park2020tinyread", "Tiny Reads Considered Harmful: Request Size Effects in Scientific Workloads", "Cluster", 2020,
		"Read requests below 100 KB dominate the operation count of 43 percent of the scientific applications we traced, yet account for under 2 percent of the bytes moved. Each small read pays a fixed network and server software cost, so effective read bandwidth collapses when the small-read fraction exceeds roughly 10 percent of operations. Data sieving, client-side read-ahead, and batching offsets before issuing reads each recovered most of the lost bandwidth. We recommend flagging any trace where the read size histogram concentrates in the 0-100 or 100-1K bins."},
	{"chen2021aggregation", "Request Aggregation Strategies for Extreme-Scale I/O", "SC", 2021,
		"We evaluate buffering strategies that coalesce many small application-level requests into large file-system transfers. Aggregating to one stripe-size transfer per server round trip maximizes throughput; fragmented request streams with mean transfer size under 64 KB saturate server request queues long before saturating disks. Two-phase collective buffering in MPI-IO is the most portable aggregation mechanism, and a user-space write-back cache is effective when collective I/O is unavailable."},
	{"luu2015behavior", "A Multiplatform Study of I/O Behavior on Petascale Supercomputers", "HPDC", 2015,
		"Analyzing a million Darshan logs across three platforms, we observe that most applications use small and inefficient request sizes: the median write is under 128 KB. Applications rarely exploit the available parallel I/O middleware; many jobs obtain under 1 percent of peak I/O bandwidth. Request size and interface choice (POSIX versus MPI-IO versus high-level libraries) are the two features that most strongly separate efficient from inefficient jobs."},

	// ---- Alignment and striping ----------------------------------------------
	{"bez2021alignment", "Stripe-Aligned I/O: Quantifying the Cost of Misalignment on Lustre", "PDSW", 2021,
		"Write requests that straddle Lustre stripe boundaries trigger read-modify-write cycles and extent-lock ping-pong between OSTs. On our testbed, misaligned writes reached only 38 percent of aligned-write bandwidth at 1 MB transfers. A request is misaligned when its file offset is not a multiple of the stripe size; the Darshan POSIX_FILE_NOT_ALIGNED counter divided by the operation count estimates the misaligned fraction. Aligning offsets to stripe boundaries or setting the stripe size to the dominant transfer size with lfs setstripe -S removes the penalty."},
	{"smith2020locking", "Extent Lock Contention in Striped File Systems", "IPDPS", 2020,
		"Unaligned accesses to shared striped files cause distributed lock managers to bounce extent locks between clients, serializing otherwise parallel writes. We show lock revocations grow quadratically with the number of writers when offsets are unaligned to stripe boundaries. Aligning per-rank regions to stripe-size multiples eliminated 96 percent of revocations. File-system-level alignment should be checked whenever shared-file write performance is poor."},
	{"gupta2022blocksz", "Choosing Transfer Sizes and Alignment for Object Storage Targets", "CCGrid", 2022,
		"Per-OST bandwidth on Lustre peaks when client transfers are whole multiples of the stripe size and begin on stripe boundaries. Transfers of exactly the stripe size achieve peak with the fewest outstanding requests. Both reads and writes suffer from misalignment, but writes suffer roughly twice as much due to read-modify-write. We recommend matching the application block size, the stripe size, and the collective buffering block size."},

	// ---- Striping / server load balance --------------------------------------
	{"lockwood2018stripe", "Stripe Count Matters: OST-Level Load Balance on Production Lustre", "CUG", 2018,
		"A stripe count of one confines each file's traffic to a single object storage target regardless of file size; large checkpoint files written with the default stripe count of 1 create severe server hotspots while the remaining OSTs idle. Raising the stripe count with lfs setstripe -c so that large files span many OSTs increased aggregate bandwidth nearly linearly up to the number of OSTs. Files larger than a few stripe units should never use a stripe count of one; the common belief that the default 1 MB stripe size with stripe count 1 is optimal does not hold for large or shared files, where it strictly limits parallelism."},
	{"kim2019ostbalance", "Diagnosing Object Storage Server Imbalance from Application Traces", "HiPC", 2019,
		"We correlate Darshan Lustre records with server-side monitoring and show that the set of OST IDs a file is striped over, together with per-file byte volumes, predicts server load imbalance accurately. Jobs concentrating more than half their bytes on fewer than a quarter of the available OSTs exhibited 2.3x longer write phases. Progressive file layouts and wider stripe counts for large files restore balance. Server load imbalance is invisible at the client unless stripe settings are inspected."},
	{"vazhkudai2017gift", "Balancing I/O Traffic Across Storage Targets with Coupon-Based Throttling", "FAST", 2017,
		"Parallel file systems suffer when concurrent applications overload a subset of storage servers. We present a bandwidth-allocation scheme that detects per-OST overload and rebalances. At the application level, the dominant causes of server imbalance are narrow stripe widths on large files and OST allocation collisions among files created at the same time."},
	{"behzad2019autotune", "Automatic Tuning of Parallel I/O Stack Parameters", "TPDS", 2019,
		"We tune stripe count, stripe size, collective buffer size, and aggregator count jointly with a genetic search. Tuned configurations averaged 6.4x speedup over system defaults across five applications. Stripe count was the single most impactful parameter for write-heavy workloads; collective buffer size mattered most for read-heavy ones. Default file-system settings are rarely optimal for data-intensive applications."},

	// ---- Collective I/O -------------------------------------------------------
	{"thakur1999romio", "Data Sieving and Collective I/O in ROMIO", "Frontiers", 1999,
		"Collective I/O lets the MPI-IO layer merge the noncontiguous requests of many processes into large contiguous file accesses performed by a subset of aggregator processes (two-phase I/O). Data sieving converts many small independent accesses into fewer large ones at the cost of extra data movement. Independent small accesses from many ranks to a shared file is the worst-performing pattern; enabling collective read_all/write_all routinely improves it by an order of magnitude."},
	{"liao2008dynamic", "Dynamically Adapting File Domain Partitioning in Collective I/O", "SC", 2008,
		"Aligning collective I/O file domains with file system lock boundaries (stripes) removes lock contention among aggregators. Stripe-aligned file domain partitioning improved collective write bandwidth by up to 4x on Lustre. The number of aggregators should match the stripe count so each aggregator talks primarily to one OST."},
	{"ather2023collective", "When Collectives Are Missing: Detecting Foregone MPI-IO Optimizations in Traces", "PDSW", 2023,
		"Traces where MPIIO_INDEP_WRITES dominates and MPIIO_COLL_WRITES is zero while many ranks share a file indicate the application (or the library above it) disabled collective buffering. Across 184 production traces, restoring collective writes improved shared-file write time by a median 3.8x. The fix is often one hint: romio_cb_write=enable, or using the _all variants of MPI-IO calls. A job with MPI processes that performs shared-file I/O exclusively through independent or POSIX operations is foregoing collective optimization."},
	{"delrosario1993twophase", "Improved Parallel I/O via a Two-Phase Run-time Access Strategy", "IOPADS", 1993,
		"Two-phase I/O decouples the application's data decomposition from the file access pattern: processes exchange data so that file accesses are large and contiguous. This seminal strategy underlies modern collective buffering; without it, interleaved per-process accesses to shared files degrade to small strided operations."},

	// ---- Metadata -------------------------------------------------------------
	{"carns2009metadata", "Metadata Scalability Limits in Parallel File Systems", "PDSW", 2009,
		"File create, open, stat, and unlink operations serialize at the metadata server. Applications that open thousands of small files, or that stat files inside loops, spend the majority of their I/O time in metadata. When the fraction of I/O time attributable to metadata operations exceeds roughly 25 percent, the job is metadata-bound. Mitigations include aggregating data into container formats such as HDF5, caching stat results, and creating files from a single rank."},
	{"patil2011mdtest", "Scale and Concurrency of Massive File System Directories", "FAST", 2011,
		"Concurrent file creation in a shared directory bottlenecks on directory-entry locking. Per-process subdirectories or hashed directory layouts raise create rates by over 10x. Metadata-heavy benchmarks (mdtest-style open/stat/close storms) are dominated by server CPU, not storage bandwidth."},
	{"ross2020mdcache", "Client-Side Metadata Caching for HPC Workloads", "HPDC", 2020,
		"Repeated stat calls to unchanged files are the most common avoidable metadata pattern in our trace corpus, appearing in 31 percent of jobs. A client-side attribute cache eliminated 92 percent of MDS round trips for these jobs. Tools should flag traces with high ratios of stat operations to data operations."},

	// ---- Random access --------------------------------------------------------
	{"shan2008characterizing", "Characterizing Random Versus Sequential Access in Scientific I/O", "SC", 2008,
		"Parallel file systems deliver an order of magnitude more bandwidth for sequential streams than for random access. We classify an access stream by the fraction of operations whose offset does not follow the previous operation: when fewer than half of accesses are sequential, prefetching and write-behind become ineffective. Sorting offsets before issuing, or routing through collective I/O which internally reorders, converts most random scientific access patterns into near-sequential ones."},
	{"he2013patterns", "Pattern-Aware Prefetching for Non-Contiguous Parallel I/O", "IPDPS", 2013,
		"Strided and random read patterns defeat sequential read-ahead. We detect strides from trace offsets and prefetch accordingly, improving strided read bandwidth 2.8x. Truly random reads remain bound by per-request latency; the only robust remedies are request batching and caching the working set in faster storage."},
	{"zhang2016writeorder", "Out-of-Order Writes and Their Cost on Log-Structured and Extent File Systems", "MSST", 2016,
		"Random-order writes fragment extent allocations and defeat server write-behind, inflating both write time and subsequent read time. Reordering writes into offset order in a staging buffer before flushing improved write bandwidth by 2.1x on Lustre. Darshan's sequential-write ratio (POSIX_SEQ_WRITES over POSIX_WRITES) below 0.5 reliably indicates this problem."},

	// ---- Shared file access / contention ---------------------------------------
	{"frings2009sionlib", "Scalable Massively Parallel Task-Local I/O", "SC", 2009,
		"Shared-file access by thousands of processes contends on file-system locks; file-per-process access floods the metadata server with creates. Subfiling — a small number of shared container files — balances the two failure modes. For shared files, lock contention is proportional to the number of writers per stripe, so stripe-aligned non-overlapping regions per rank are essential."},
	{"dickens2010y", "Why Shared-File I/O Underperforms on Lustre and What To Do About It", "HPDC", 2010,
		"Naive shared-file writes from many ranks perform far below file-per-process on Lustre due to extent lock exchange. With stripe-aligned domains or collective buffering, shared-file performance matches file-per-process while keeping file counts manageable. Shared file access is a performance concern whenever many ranks write a common file without collective coordination."},
	{"xie2012sharedcontention", "Quantifying Lock Contention on Shared Files at Scale", "Cluster", 2012,
		"We instrument the Lustre lock manager and show client lock wait time grows with writer count on shared files, reaching 70 percent of write time at 1024 writers with unaligned regions. Per-rank offsets aligned to stripe size, fewer writers via aggregation, or splitting into subfiles each reduce contention dramatically."},

	// ---- Rank imbalance / stragglers -------------------------------------------
	{"tavakoli2016straggler", "Log-Assisted Straggler-Aware I/O Scheduling for High-End Computing", "ICPPW", 2016,
		"A single slow rank extends collective I/O phases because completion is gated by the slowest participant. Darshan's rank-time variance counters and the gap between fastest- and slowest-rank byte counts identify rank-level imbalance. Rebalancing the data decomposition or using straggler-aware aggregator placement reduced I/O phase time by up to 35 percent."},
	{"bogdan2018variance", "Variance Matters: Interpreting Per-Rank Timing Spread in I/O Traces", "IPDPS", 2018,
		"We find that jobs whose slowest rank spends more than twice the mean I/O time exhibit near-linear slowdowns of the whole I/O phase. Causes include uneven data decomposition, OST collisions, and node-level interference. The variance-of-rank-time and variance-of-rank-bytes counters in Darshan directly expose the condition; byte-count skew points to decomposition problems while time skew with even bytes points to interference."},

	// ---- POSIX vs MPI / no-MPI multi-process ------------------------------------
	{"latham2007mpiio", "The Case for Using MPI-IO Instead of POSIX in Parallel Applications", "EuroPVM/MPI", 2007,
		"POSIX semantics force sequential consistency per call and hide inter-process structure from the storage stack. MPI-IO exposes collective structure, enabling two-phase optimization, request merging, and hint-driven tuning. Applications at more than a handful of processes that perform the bulk of their I/O through POSIX leave most of the stack's optimizations unused; at 8 or more processes the MPI-IO path typically outperforms uncoordinated POSIX by 2x to 10x on shared files."},
	{"snir2014nompi", "Uncoordinated I/O from Multi-Process Applications: A Measurement Study", "HPDC", 2014,
		"Applications that launch many processes without MPI (task farms, fork-based launchers) issue uncoordinated POSIX streams; the file system observes them as unrelated clients and cannot aggregate or schedule them jointly. Such multi-process-without-MPI jobs show the highest variance and the lowest efficiency class in our study. Adopting MPI, or at minimum a coordination layer that assigns disjoint aligned regions, recovers most losses."},
	{"shan2007ior", "Using IOR to Analyze the I/O Performance of Modern HPC Platforms", "CUG", 2007,
		"IOR parameter sweeps show the interface hierarchy clearly: collective MPI-IO with tuned stripe settings achieves the platform ceiling; independent MPI-IO follows; uncoordinated POSIX from many ranks to a shared file performs worst. Transfer size and interface choice jointly determine performance; neither alone suffices."},

	// ---- STDIO / low-level library ----------------------------------------------
	{"rane2018stdio", "The Hidden Cost of Buffered STDIO Streams in Scientific Applications", "HUST", 2018,
		"fread/fwrite route every transfer through a per-stream user-space buffer with a global lock, adding a memory copy and serializing concurrent access. Bulk data movement through STDIO reached at most 20 percent of POSIX bandwidth in our tests, and STDIO offers no path to collective optimization. STDIO is appropriate only for small configuration and log files; traces where a significant share of bytes flow through STDIO indicate a library-selection problem."},
	{"wang2021interface", "Interface Selection Effects Across the HPC I/O Stack", "SC", 2021,
		"We compare STDIO, POSIX, MPI-IO, and HDF5 across four platforms. For bulk data, STDIO trails POSIX by 3-8x; POSIX trails collective MPI-IO by 2-6x on shared files. High-level libraries add negligible overhead while enabling portability and tuning. Interface choice should be treated as a first-class tuning knob visible in any trace analysis."},

	// ---- Repetitive access / caching ----------------------------------------------
	{"kougkas2018hermes", "Hermes: A Multi-Tiered Distributed I/O Buffering System", "HPDC", 2018,
		"Repeatedly reading the same data from the parallel file system wastes bandwidth that a node-local or burst-buffer tier could serve. Our buffering system captures re-read working sets automatically, improving re-read-heavy workloads by up to 9x. Traces where bytes read exceed the file extent by a large factor indicate a cacheable re-read pattern."},
	{"ovsyannikov2017burstbuffer", "Scientific Workflows at DataWarp-Accelerated Scale", "CUG", 2017,
		"Burst buffers absorb bursty checkpoints and serve repeated reads at memory-class bandwidth. Workloads that re-read input datasets across analysis stages benefit the most; staging re-read data into the burst buffer removed the file system from the critical path entirely."},

	// ---- Tools and methodology ------------------------------------------------
	{"carns2011darshan", "Understanding and Improving Computational Science Storage Access through Continuous Characterization", "TOS", 2011,
		"Darshan instruments applications transparently and records per-file counters for POSIX, MPI-IO, and STDIO: operation counts, byte volumes, access-size histograms, alignment, common access sizes and strides, and per-rank timing statistics, at negligible overhead. Continuous characterization across a center's workload enables both per-job diagnosis and fleet-wide policy decisions."},
	{"bez2022drishti", "Drishti: Guiding End-Users in the I/O Optimization Journey", "PDSW", 2022,
		"Drishti converts Darshan counters into actionable triggers: small requests (more than 10 percent of operations under 1 MB), misalignment, excessive metadata time, rank imbalance, missing collective operations, and more. Each trigger carries a fixed recommendation. Heuristic thresholds scan fleets quickly but cannot adapt explanations to the specific application context."},
	{"wang2018iominer", "IOMiner: Large-Scale Analytics Framework for Gaining Knowledge from I/O Logs", "Cluster", 2018,
		"We mine hundreds of thousands of Darshan logs with a SQL-style interface, finding that a small set of recurring anti-patterns — small requests, shared-file contention, single-OST concentration, and metadata storms — explains most poorly performing jobs."},
	{"lockwood2017umami", "UMAMI: A Recipe for Generating Meaningful Metrics through Holistic I/O Performance Analysis", "PDSW", 2017,
		"Combining application-level traces with file-system-side and system-level metrics in a normalized dashboard reveals causes that single-source analysis misses, such as external interference masquerading as application regression. Holistic context should accompany any per-job diagnosis."},
	{"luettgau2023pydarshan", "Enabling Agile Analysis of I/O Performance Data with PyDarshan", "SC-W", 2023,
		"PyDarshan exposes Darshan records as dataframes and powers interactive summary reports. Module-level decomposition (per-interface, per-file) is the natural unit of analysis; cross-module correlation, such as comparing MPI-IO and POSIX volumes, identifies translation inefficiencies in the stack."},
	{"bez2021dxt", "I/O Bottleneck Detection and Tuning: Connecting the Dots using Interactive Log Analysis", "PDSW", 2021,
		"Interactive exploration of fine-grained DXT traces exposes temporal patterns that aggregate counters blur: bursts, phase overlap, and rank-level stragglers. Aggregate counters remain the right first-pass signal; fine-grained traces confirm hypotheses."},
	{"snyder2016modular", "Modular HPC I/O Characterization with Darshan", "ESPT", 2016,
		"Darshan's modular design records each API layer separately (POSIX, MPI-IO, STDIO, Lustre). Cross-referencing modules is essential: MPI-IO collective calls that translate to small POSIX accesses indicate middleware misconfiguration, while POSIX volume without MPI-IO volume in an MPI job indicates the application bypassed the optimizing layer."},
	{"egersdoerfer2024ion", "ION: Navigating the HPC I/O Optimization Journey using Large Language Models", "HotStorage", 2024,
		"We prompt large language models directly with Darshan summaries to produce I/O diagnoses. LLMs identify common issues but hallucinate plausible-sounding misconfigurations, miss information outside their context window, and repeat popular misconceptions such as recommending the default stripe settings for large shared files. Grounding and decomposition are needed for trustworthy diagnosis."},

	// ---- Access size/stride analytics -------------------------------------------
	{"kunkel2016monitoring", "A Statistical Approach to I/O Performance Expectations", "ISC", 2016,
		"We model expected transfer time as a function of access size and randomness, flagging jobs that deviate from the platform envelope. Access-size histograms and sequential ratios suffice to predict attainable bandwidth within 20 percent for most jobs."},
	{"xu2017stride", "Stride Hunting: Recovering Access Structure from Aggregate Counters", "IPDPS", 2017,
		"The top-k common access sizes and strides that Darshan records compactly encode the dominant access structure. A single dominant stride equal to rank count times access size indicates an interleaved shared-file pattern that collective I/O would aggregate perfectly; many distinct strides indicate irregular access needing reordering."},

	// ---- Checkpointing / application studies --------------------------------------
	{"bent2009plfs", "PLFS: A Checkpoint Filesystem for Parallel Applications", "SC", 2009,
		"Interposing a layer that converts N-to-1 shared-file checkpoints into N-to-N physical files improved checkpoint bandwidth by up to two orders of magnitude, demonstrating how destructive unaligned shared-file writes are on striped storage."},
	{"zhang2018amrio", "I/O Characterization of Block-Structured AMR Applications", "IPDPS", 2018,
		"AMR frameworks write hierarchies of plotfiles and checkpoints with sizes that vary per level. Default POSIX-per-rank plotfile writes underuse MPI-IO; enabling the framework's collective write path and widening stripe counts for checkpoint files improved write phases by 3.2x. AMReX-family codes show exactly this signature: POSIX-dominated volume, stripe count 1, and modest per-write sizes."},
	{"byna2020exahdf5", "ExaHDF5: Delivering Efficient Parallel I/O on Exascale Systems", "CCF THPC", 2020,
		"Tuning HDF5 collective metadata, chunk sizes aligned with stripes, and asynchronous writes delivered near-peak bandwidth for several exascale applications. High-level libraries centralize tuning: one hint set fixes all files, unlike per-call POSIX tuning."},
	{"paul2020e2e", "End-to-End Study of an Earth-Science Data Pipeline's I/O", "Cluster", 2020,
		"The pipeline's original configuration wrote millions of small records through buffered streams, spending 78 percent of runtime in I/O. Moving bulk output to collective MPI-IO with 8-wide striping and batching records into megabyte buffers cut I/O time by 8.5x. Re-collected traces after the fix verified that small-write and low-level-library signatures disappeared."},
	{"kurth2018climate", "Exascale Deep Learning for Climate Analytics: I/O Lessons", "SC", 2018,
		"Training ingest re-reads the same sharded dataset each epoch; staging shards into node-local NVMe removed the repeated-read load from Lustre. Randomized access within shards benefits from larger read granularity and prefetch depth tuned to shard size."},
	{"openpmd2022study", "Optimizing OpenPMD Particle Dumps on Striped Storage", "ISC", 2022,
		"Particle-mesh dumps wrote interleaved per-rank regions misaligned with stripes; enabling stripe-aligned chunking plus collective writes raised bandwidth 5x. The before/after trace pair shows misaligned-write and no-collective signatures resolving while volumes remain constant."},

	// ---- Scheduling / system-level ---------------------------------------------
	{"gainaru2015scheduling", "Scheduling the I/O of HPC Applications Under Congestion", "IPDPS", 2015,
		"Cross-application interference at shared storage creates congestion windows where per-job bandwidth collapses. Application-side symptoms include elevated per-operation latency with unchanged access patterns; diagnosis tools should distinguish congestion from application-caused inefficiency before recommending code changes."},
	{"dorier2014calciom", "CALCioM: Mitigating I/O Interference in HPC Systems through Cross-Application Coordination", "IPDPS", 2014,
		"Coordinating applications' I/O phases via communication avoids interference; uncoordinated phases suffer up to 3x slowdowns. System-level effects can masquerade as application issues in single-trace analysis."},
	{"yildiz2016root", "On the Root Causes of Cross-Application I/O Interference", "IPDPS", 2016,
		"We decompose interference into network, server CPU, and disk components. Server-side contention dominates for small requests; disk contention dominates for large sequential streams. The access size distribution of the victim determines which mitigation helps."},
	{"patel2019uncovering", "Uncovering Access, Reuse, and Sharing Characteristics of I/O-Intensive Files", "FAST", 2019,
		"Across a production fleet, a small fraction of files receives most accesses; re-reads across jobs are common and highly cacheable. File-level reuse analysis justifies center-wide caching tiers and informs per-application caching advice."},

	// ---- Broader tuning studies ------------------------------------------------
	{"isakov2020sweep", "HPC I/O Throughput Bottleneck Analysis with Explainable Local Models", "SC", 2020,
		"Training interpretable models on Darshan features identifies per-job bottleneck causes with 89 percent accuracy. The most predictive features are small-access fractions, sequential ratios, metadata time share, and stripe settings — the same features experts consult first."},
	{"agarwal2021active", "Active Learning for I/O Configuration Autotuning", "Cluster", 2021,
		"Sample-efficient autotuning finds near-optimal stripe and collective-buffer settings in under 20 trial runs. Transfer across applications works when access-size histograms are similar, suggesting histogram-based workload fingerprints."},
	{"han2022iopathtune", "IOPathTune: Adaptive Online Parameter Tuning for Parallel File System I/O Path", "arXiv", 2022,
		"Online tuning of client-side I/O path parameters adapts to workload phases without application changes, complementing offline stripe tuning. Phase detection keys off request-size and queue-depth shifts."},
	{"bagbaba2020middleware", "Improving Collective I/O Performance with Machine-Learning-Guided Hint Selection", "Cluster", 2020,
		"Automatic MPI-IO hint selection (collective buffer size, aggregator count, data sieving toggles) matched hand-tuned settings on 14 of 16 workloads. Hints are a low-risk, high-reward tuning surface that trace-driven tools should recommend concretely."},
	{"sung2019burst", "Understanding Parallel I/O Performance and Tuning on Burst Buffer Systems", "CCGrid", 2019,
		"Burst-buffer striping mirrors Lustre: files confined to one burst-buffer node bottleneck exactly like stripe-count-1 files on one OST. Wide striping and aligned transfers carry over as the primary tuning actions."},

	// ---- Log/trace analysis with ML/LLM ------------------------------------------
	{"zhang2021sentilog", "SentiLog: Anomaly Detecting on Parallel File Systems via Log-based Sentiment Analysis", "HotStorage", 2021,
		"Language-model sentiment over file-system server logs detects anomalous periods without hand-built parsers, demonstrating that learned text models transfer to storage telemetry."},
	{"egersdoerfer2022clusterlog", "ClusterLog: Clustering Logs for Effective Log-based Anomaly Detection", "FTXS", 2022,
		"Clustering log keys before sequence modeling improves anomaly detection on parallel file system logs, highlighting the value of preprocessing and grouping before inference — long unstructured inputs degrade learned models."},
	{"egersdoerfer2023chatgpt", "Early Exploration of Using ChatGPT for Log-based Anomaly Detection on Parallel File Systems Logs", "HPDC", 2023,
		"Prompting ChatGPT with raw log windows finds obvious anomalies but misses context outside the window and fabricates explanations; grouping related lines and constraining outputs reduces both failure modes."},
	{"zhang2023drill", "DRILL: Log-based Anomaly Detection for Large-scale Storage Systems Using Source Code Analysis", "IPDPS", 2023,
		"Augmenting log anomaly detection with source-derived templates grounds detections in code reality, cutting false positives by half — external grounding disciplines learned detectors."},

	// ---- Additional platform studies ---------------------------------------------
	{"oral2014spider", "Best Practices for Deploying and Managing a Large-Scale Lustre File System", "Cluster", 2014,
		"Operating a center-wide Lustre system, we find client-side misconfiguration (default striping, unaligned I/O, small requests) causes more user-visible slowness than hardware faults. User-facing diagnosis tooling has the highest leverage of any investment."},
	{"liu2018serverbuffer", "Server-Side Log-Structured Buffering for Small Writes", "MSST", 2018,
		"Absorbing small writes into server-side logs and compacting in the background recovers much of the small-write penalty transparently, at the cost of read amplification during compaction; client-side aggregation remains preferable when feasible."},
	{"costa2021characterizing", "Characterizing I/O Phases of Deep-Learning Workloads on HPC Systems", "CCGrid", 2021,
		"DL workloads alternate metadata-heavy shard enumeration with random small reads; both phases respond to batching: larger shards and fewer, bigger read requests."},
	{"nersc2021workload", "NERSC Workload Analysis: I/O Patterns Across Ten Thousand Projects", "Technical Report", 2021,
		"Fleet-wide, the top recurring diagnoses are small writes, default stripe counts on large files, missing collective I/O, and metadata storms from file-per-process patterns — in that order. Most users never adjust file system defaults, so diagnosis tools should always check stripe settings against file sizes."},
}
