// Package knowledge holds the domain-knowledge corpus behind IOAgent's
// Retrieval-Augmented Generation layer. The paper surveyed five years of
// "HPC I/O performance" literature in the ACM DL and IEEE Xplore and kept 66
// key works; this package carries a synthetic corpus of the same size and
// topical composition (striping, collective I/O, request sizes, alignment,
// metadata, load balance, caching, libraries), each entry written as the
// abstract-plus-findings digest a retrieval chunk of the real paper would
// contain. Citation keys are stable and are what diagnosis reports cite.
//
// BuildIndex embeds the corpus into a vectordb.Index with the paper's
// chunking settings (512-token chunks, overlap 20, cosine similarity).
// Building the index is the expensive step — 66 documents are chunked and
// embedded — so long-lived components construct it once and share it: the
// fleet pool builds a single index for all of its workers, and tests share
// one package-level index. Lookup resolves a citation key back to its
// source document, which is how chat sessions ground follow-up answers in
// the references a diagnosis cited.
package knowledge
