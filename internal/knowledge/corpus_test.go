package knowledge

import (
	"strings"
	"testing"

	"ioagent/internal/issue"
)

// TestCorpusSize pins the corpus to the paper's 66 surveyed works.
func TestCorpusSize(t *testing.T) {
	if got := len(Corpus()); got != 66 {
		t.Errorf("corpus has %d documents, want 66", got)
	}
}

func TestCorpusWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range Corpus() {
		if d.Key == "" || d.Title == "" || d.Venue == "" {
			t.Errorf("document %+v missing key/title/venue", d)
		}
		if seen[d.Key] {
			t.Errorf("duplicate citation key %q", d.Key)
		}
		seen[d.Key] = true
		if len(strings.Fields(d.Text)) < 20 {
			t.Errorf("document %q body too short to chunk meaningfully", d.Key)
		}
		if d.Year < 1990 || d.Year > 2025 {
			t.Errorf("document %q has implausible year %d", d.Key, d.Year)
		}
	}
}

func TestLookup(t *testing.T) {
	d, ok := Lookup("lockwood2018stripe")
	if !ok || d.Year != 2018 {
		t.Fatalf("Lookup(lockwood2018stripe) = %+v, %v", d, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown key should fail")
	}
}

// BenchmarkLookup pins the O(1) lookup claim: hitting the first and the
// last corpus key costs the same (a map probe), where the old linear scan
// paid ~66x more for the last. Run with -benchtime to compare positions.
func BenchmarkLookup(b *testing.B) {
	all := Corpus()
	first, last := all[0].Key, all[len(all)-1].Key
	b.Run("first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := Lookup(first); !ok {
				b.Fatal("first key missing")
			}
		}
	})
	b.Run("last", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := Lookup(last); !ok {
				b.Fatal("last key missing")
			}
		}
	})
}

// TestLookupConcurrent exercises the once-guarded map build under -race.
func TestLookupConcurrent(t *testing.T) {
	keys := []string{"yang2019smallwrite", "bez2021alignment", "nope"}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				Lookup(keys[j%len(keys)])
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// TestTopicCoverage checks every issue label has at least one document whose
// text matches two of its topic keywords — otherwise the RAG layer could
// never ground a diagnosis of that label.
func TestTopicCoverage(t *testing.T) {
	for _, label := range issue.All {
		topics := issue.Topics[label]
		found := false
		for _, d := range Corpus() {
			text := strings.ToLower(d.Text)
			n := 0
			for _, kw := range topics {
				if strings.Contains(text, kw) {
					n++
				}
			}
			if n >= 2 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no corpus document grounds label %q (topics %v)", label, topics)
		}
	}
}

func TestBuildIndexRetrieval(t *testing.T) {
	ix := BuildIndex()
	if ix.Len() < 66 {
		t.Fatalf("index has %d chunks, want >= 66", ix.Len())
	}
	hits := ix.Search("85% of write requests transfer fewer than 1 MB small writes aggregate buffers", 5)
	if len(hits) != 5 {
		t.Fatalf("got %d hits", len(hits))
	}
	// At least one of the top hits must be a small-write document.
	found := false
	for _, h := range hits {
		if strings.Contains(h.Chunk.DocKey, "small") || strings.Contains(strings.ToLower(h.Chunk.Text), "small write") {
			found = true
		}
	}
	if !found {
		t.Errorf("small-write query did not retrieve small-write literature: %v",
			[]string{hits[0].Chunk.DocKey, hits[1].Chunk.DocKey, hits[2].Chunk.DocKey})
	}
}
