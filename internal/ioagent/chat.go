package ioagent

import (
	"fmt"
	"strings"

	"ioagent/internal/llm"
)

// Session is a post-diagnosis interactive conversation (paper Fig. 5): the
// user keeps asking questions and every answer is grounded in the diagnosis
// context and its references.
type Session struct {
	agent     *Agent
	diagnosis string
	history   []llm.Message
}

// NewSession starts an interactive session over a completed diagnosis.
func (a *Agent) NewSession(result *Result) *Session {
	return &Session{agent: a, diagnosis: result.Text}
}

// Ask answers a follow-up question using the diagnosis as context.
func (s *Session) Ask(question string) (string, error) {
	var b strings.Builder
	b.WriteString("TASK: chat\n")
	b.WriteString("PRIOR DIAGNOSIS:\n")
	b.WriteString(s.diagnosis)
	b.WriteString("\n")
	for _, m := range s.history {
		fmt.Fprintf(&b, "[%s]\n%s\n", m.Role, m.Content)
	}
	fmt.Fprintf(&b, "QUESTION: %s\n", question)

	resp, err := s.agent.client.Complete(llm.Prompt(s.agent.model, b.String()))
	if err != nil {
		return "", fmt.Errorf("chat: %w", err)
	}
	s.agent.addCost(resp)
	s.history = append(s.history,
		llm.Message{Role: llm.RoleUser, Content: question},
		llm.Message{Role: llm.RoleAssistant, Content: resp.Content},
	)
	return resp.Content, nil
}

// History returns the conversation so far.
func (s *Session) History() []llm.Message {
	return append([]llm.Message(nil), s.history...)
}
