package ioagent

import (
	"fmt"
	"sync"

	"ioagent/internal/darshan"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/vectordb"
)

// Options tune the pipeline; zero values give the paper's configuration.
type Options struct {
	// Model is the main diagnosis model (default gpt-4o-sim).
	Model string
	// CheapModel runs the self-reflection filter (default gpt-4o-mini-sim).
	CheapModel string
	// TopK is the number of chunks retrieved per fragment (paper: 15).
	TopK int
	// DisableRAG skips retrieval entirely (ablation).
	DisableRAG bool
	// DisableReflection skips the self-reflection filter (ablation).
	DisableReflection bool
	// UseOneShotMerge replaces the tree merge with a single merge call
	// (the Fig. 6 ablation baseline).
	UseOneShotMerge bool
	// Index overrides the knowledge index (default: the built-in corpus,
	// built once per process and shared across agents).
	Index *vectordb.Index
	// Retriever, when set, replaces the embedded index on the retrieval
	// path: the agent asks it for the top-k sources per fragment instead
	// of searching Index. The fleet's knowledge plane implements this to
	// serve retrieval as a cluster service (epoch-versioned corpus, ANN
	// search, optional rerank). Retrieval falls back to Index when nil.
	Retriever Retriever
}

// Retriever serves top-k retrieval for the agent's RAG stage. Implementations
// must be safe for concurrent use; vectordb.Index satisfies the shape via
// Search, and internal/fleet/knowledge.Plane is the fleet-served form.
type Retriever interface {
	Retrieve(query string, k int) []vectordb.Hit
}

// WithDefaults returns a copy of o with every unset field replaced by the
// paper's default. Exposed so callers that key work on a configuration —
// the fleet result cache content-addresses (options, trace) pairs — see
// the same canonical form the agent will actually run with.
func (o Options) WithDefaults() Options {
	if o.Model == "" {
		o.Model = llm.GPT4o
	}
	if o.CheapModel == "" {
		o.CheapModel = llm.GPT4oMini
	}
	if o.TopK <= 0 {
		o.TopK = 15
	}
	return o
}

// Agent is the IOAgent pipeline bound to an LLM client and knowledge index.
// An Agent is safe for concurrent use: Diagnose may be called from many
// goroutines at once provided the llm.Client is itself concurrency-safe
// (see the package documentation).
type Agent struct {
	client     llm.Client
	model      string
	cheapModel string
	index      *vectordb.Index
	retriever  Retriever
	opts       Options

	mu      sync.Mutex
	usage   llm.Usage
	cost    float64
	calls   int
	byModel map[string]ModelStats
}

// ModelStats is the accumulated usage of one model across an agent's
// calls, as reported by StatsByModel.
type ModelStats struct {
	Usage   llm.Usage
	CostUSD float64
	Calls   int
}

// defaultIndex memoizes the built-in corpus index: chunk embedding is the
// expensive part of agent construction, and every default-configured agent
// in a process (tests, tier-ladder rungs, multi-agent daemons) retrieves
// from the identical immutable corpus. Agents never mutate their index, so
// sharing is safe; callers that need a private or mutable index pass
// Options.Index explicitly.
var defaultIndex struct {
	once sync.Once
	ix   *vectordb.Index
}

func defaultCorpusIndex() *vectordb.Index {
	defaultIndex.once.Do(func() {
		defaultIndex.ix = knowledge.BuildIndex()
	})
	return defaultIndex.ix
}

// New builds an agent. A nil index in opts selects the built-in 66-document
// corpus index, built once per process and shared.
func New(client llm.Client, opts Options) *Agent {
	opts = opts.WithDefaults()
	ix := opts.Index
	if ix == nil && !opts.DisableRAG {
		ix = defaultCorpusIndex()
	}
	return &Agent{
		client:     client,
		model:      opts.Model,
		cheapModel: opts.CheapModel,
		index:      ix,
		retriever:  opts.Retriever,
		opts:       opts,
	}
}

// Model returns the main diagnosis model name.
func (a *Agent) Model() string { return a.model }

// Index returns the knowledge index the agent retrieves from (nil when RAG
// is disabled). Exposed so cooperating agents — e.g. the fleet's model-tier
// ladder — share one corpus index instead of each paying to rebuild it.
func (a *Agent) Index() *vectordb.Index { return a.index }

func (a *Agent) addCost(resp llm.Response) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.addCostLocked(resp)
}

// addCostLocked requires a.mu held.
func (a *Agent) addCostLocked(resp llm.Response) {
	a.usage.PromptTokens += resp.Usage.PromptTokens
	a.usage.CompletionTokens += resp.Usage.CompletionTokens
	a.cost += resp.CostUSD
	a.calls++
	if a.byModel == nil {
		a.byModel = make(map[string]ModelStats)
	}
	ms := a.byModel[resp.Model]
	ms.Usage.PromptTokens += resp.Usage.PromptTokens
	ms.Usage.CompletionTokens += resp.Usage.CompletionTokens
	ms.CostUSD += resp.CostUSD
	ms.Calls++
	a.byModel[resp.Model] = ms
}

// Stats reports accumulated usage across all calls made by the agent.
func (a *Agent) Stats() (usage llm.Usage, costUSD float64, calls int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usage, a.cost, a.calls
}

// StatsByModel breaks Stats down per model (the diagnosis model and the
// cheap self-reflection model accumulate separately). The returned map is
// a copy and safe to retain.
func (a *Agent) StatsByModel() map[string]ModelStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]ModelStats, len(a.byModel))
	for model, ms := range a.byModel {
		out[model] = ms
	}
	return out
}

// FragmentResult records the intermediate artifacts of one fragment's
// journey through the pipeline (useful for inspection and tests).
type FragmentResult struct {
	Fragment    *Fragment
	Description string
	Retrieved   int // sources retrieved from the index
	Kept        int // sources surviving self-reflection
	Diagnosis   string
}

// Result is a complete diagnosis.
type Result struct {
	// Text is the final merged diagnosis in the canonical report layout.
	Text string
	// Report is the parsed form of Text.
	Report *llm.Report
	// Fragments are the per-fragment intermediates in pipeline order.
	Fragments []FragmentResult
}

// Diagnose runs the full pipeline on a Darshan log.
func (a *Agent) Diagnose(log *darshan.Log) (*Result, error) {
	frags := Summarize(log)
	if len(frags) == 0 {
		return nil, fmt.Errorf("ioagent: trace contains no module data")
	}

	// Per-fragment describe -> retrieve -> reflect -> diagnose. Fragments
	// are independent, so they run in parallel like the paper's
	// per-source filtering.
	results := make([]FragmentResult, len(frags))
	errs := make([]error, len(frags))
	var wg sync.WaitGroup
	for i, frag := range frags {
		wg.Add(1)
		go func(i int, frag *Fragment) {
			defer wg.Done()
			fr := FragmentResult{Fragment: frag}
			nl, _, err := a.describeFragment(frag)
			if err != nil {
				errs[i] = err
				return
			}
			fr.Description = nl
			sources := a.retrieve(nl)
			fr.Retrieved = len(sources)
			sources, err = a.selfReflect(nl, sources)
			if err != nil {
				errs[i] = err
				return
			}
			fr.Kept = len(sources)
			diag, err := a.diagnoseFragment(frag, nl, sources)
			if err != nil {
				errs[i] = err
				return
			}
			fr.Diagnosis = diag
			results[i] = fr
		}(i, frag)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	summaries := make([]string, len(results))
	for i, fr := range results {
		summaries[i] = fr.Diagnosis
	}
	var merged string
	var err error
	if a.opts.UseOneShotMerge {
		merged, err = a.OneShotMerge(summaries)
	} else {
		merged, err = a.TreeMerge(summaries)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Text:      merged,
		Report:    llm.ParseReport(merged),
		Fragments: results,
	}, nil
}
