package ioagent

import (
	"strings"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

// problemLog builds a trace with several labeled issues: small shared-file
// writes without collectives on default (1x1MiB) striping.
func problemLog() *darshan.Log {
	s := iosim.New(iosim.Config{Seed: 42, NProcs: 8, UsesMPI: true, Exe: "/bin/app.x"})
	lay := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
	f := s.OpenShared("/scratch/out.dat", iosim.MPIIndep, false, lay)
	for rank := 0; rank < 8; rank++ {
		base := int64(rank) * (8 << 20)
		for i := int64(0); i < 256; i++ {
			f.WriteAt(rank, base+i*32768, 32768) // 32 KiB writes
		}
	}
	iosim.ConfigRead(s, "/scratch/run.cfg")
	return s.Finalize()
}

func TestTableICoverage(t *testing.T) {
	// The Table I matrix exactly: modules x summary categories.
	want := map[darshan.ModuleID][]string{
		darshan.ModulePOSIX:  {CatIOSize, CatRequestCount, CatFileMetadata, CatRank, CatAlignment, CatOrder},
		darshan.ModuleMPIIO:  {CatIOSize, CatRequestCount, CatFileMetadata, CatRank, CatAlignment},
		darshan.ModuleSTDIO:  {CatIOSize, CatRequestCount, CatFileMetadata},
		darshan.ModuleLustre: {CatMount, CatStripeSetting, CatServerUsage},
	}
	for m, cats := range want {
		got := CategoryCoverage[m]
		if len(got) != len(cats) {
			t.Fatalf("module %s covers %v, want %v", m, got, cats)
		}
		for i := range cats {
			if got[i] != cats[i] {
				t.Errorf("module %s category %d = %s, want %s", m, i, got[i], cats[i])
			}
		}
	}
	// LUSTRE must not extract I/O sizes; STDIO must not extract stripes.
	for _, c := range CategoryCoverage[darshan.ModuleLustre] {
		if c == CatIOSize {
			t.Error("LUSTRE must not extract io_size")
		}
	}
}

func TestSummarizeFragments(t *testing.T) {
	log := problemLog()
	frags := Summarize(log)
	// All four modules present: 6 + 5 + 3 + 3 = 17 fragments.
	if len(frags) != 17 {
		t.Fatalf("got %d fragments, want 17", len(frags))
	}
	byID := map[string]*Fragment{}
	for _, f := range frags {
		byID[f.ID()] = f
	}

	ios := byID["POSIX/io_size"]
	if ios == nil {
		t.Fatal("missing POSIX/io_size fragment")
	}
	if frac := ios.Data[llm.KeySmallWriteFrac]; frac < 0.9 {
		t.Errorf("small write fraction = %g, want ~1.0", frac)
	}
	if ios.Data[llm.KeyNProcs] != 8 {
		t.Error("job context (nprocs) missing from fragment")
	}
	if ios.Data[llm.KeySharedFiles] < 1 {
		t.Error("shared-file context missing from fragment")
	}

	stripe := byID["LUSTRE/stripe_setting"]
	if stripe == nil {
		t.Fatal("missing LUSTRE/stripe_setting fragment")
	}
	if stripe.Data[llm.KeyStripeWidth] != 1 || stripe.Data[llm.KeyStripeSize] != 1<<20 {
		t.Errorf("stripe fragment = %v", stripe.Data)
	}
	if stripe.Data[llm.KeyWideFiles] < 1 {
		t.Error("large file on single OST not counted")
	}

	req := byID["MPI-IO/request_count"]
	if req == nil {
		t.Fatal("missing MPI-IO/request_count fragment")
	}
	if req.Data[llm.KeyIndepWrites] == 0 || req.Data[llm.KeyCollWrites] != 0 {
		t.Errorf("collective counts wrong: %v", req.Data)
	}
}

func TestFragmentJSONDeterministic(t *testing.T) {
	log := problemLog()
	a := Summarize(log)[0].JSON()
	b := Summarize(log)[0].JSON()
	if a != b {
		t.Error("fragment JSON must be deterministic")
	}
	if !strings.HasPrefix(a, `{"module": "POSIX", "category": "io_size"`) {
		t.Errorf("JSON shape unexpected: %s", a[:60])
	}
}

func TestModuleCSV(t *testing.T) {
	log := problemLog()
	csv := ModuleCSV(log, darshan.ModulePOSIX)
	if !strings.HasPrefix(csv, "file,rank,counter,value\n") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(csv, "POSIX_WRITES") {
		t.Error("CSV missing counters")
	}
	if got := SplitModules(log); len(got) != 4 {
		t.Errorf("SplitModules returned %d modules, want 4", len(got))
	}
}

func TestDiagnoseEndToEnd(t *testing.T) {
	agent := New(llm.NewSim(), Options{})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	labels := res.Report.Labels()
	for _, want := range []issue.Label{issue.SmallWrites, issue.SharedFileAccess, issue.NoCollectiveWrite, issue.ServerImbalance} {
		if !labels[want] {
			t.Errorf("diagnosis missing %q; got: %s", want, res.Report.Summary())
		}
	}
	if len(res.Report.AllRefs()) == 0 {
		t.Error("diagnosis carries no references despite RAG")
	}
	// The RAG path must actually retrieve and filter.
	for _, fr := range res.Fragments {
		if fr.Retrieved != 15 {
			t.Errorf("fragment %s retrieved %d sources, want 15", fr.Fragment.ID(), fr.Retrieved)
		}
		if fr.Kept > fr.Retrieved {
			t.Errorf("fragment %s kept more than retrieved", fr.Fragment.ID())
		}
	}
	usage, cost, calls := agent.Stats()
	if usage.Total() == 0 || calls == 0 {
		t.Error("usage accounting empty")
	}
	if cost <= 0 {
		t.Error("gpt-4o pipeline should have nonzero cost")
	}
}

func TestSelfReflectionFiltersSources(t *testing.T) {
	agent := New(llm.NewSim(), Options{})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	// Across all fragments, reflection must drop a substantial share of
	// the top-15 (the paper reports it rules out nearly half).
	var retrieved, kept int
	for _, fr := range res.Fragments {
		retrieved += fr.Retrieved
		kept += fr.Kept
	}
	if retrieved == 0 {
		t.Fatal("nothing retrieved")
	}
	ratio := float64(kept) / float64(retrieved)
	if ratio > 0.8 {
		t.Errorf("self-reflection kept %.0f%% of sources; expected substantial filtering", ratio*100)
	}
	if ratio < 0.05 {
		t.Errorf("self-reflection kept only %.0f%%; filter too aggressive", ratio*100)
	}
}

func TestDiagnoseWithLlamaStillWorks(t *testing.T) {
	agent := New(llm.NewSim(), Options{Model: llm.Llama31, CheapModel: llm.Llama3})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Report.Labels()
	if !labels[issue.SmallWrites] {
		t.Errorf("llama agent should still find the dominant small-write issue; got %s", res.Report.Summary())
	}
	_, cost, _ := agent.Stats()
	if cost != 0 {
		t.Errorf("self-hosted llama pipeline should cost $0, got %g", cost)
	}
}

func TestTreeMergeBeatsOneShot(t *testing.T) {
	// Build 8 single-finding summaries and compare retention.
	labels := []issue.Label{
		issue.SmallWrites, issue.SmallReads, issue.RandomWrites, issue.RandomReads,
		issue.HighMetadataLoad, issue.MisalignedWrites, issue.ServerImbalance, issue.SharedFileAccess,
	}
	var summaries []string
	for _, l := range labels {
		r := &llm.Report{Findings: []llm.Finding{{
			Label: l, Evidence: "evidence for " + string(l),
			Recommendation: issue.Recommendations[l], Refs: []string{"carns2011darshan"},
		}}}
		summaries = append(summaries, r.Format())
	}

	weak := New(llm.NewSim(), Options{Model: llm.Llama3, DisableRAG: true})
	tree, err := weak.TreeMerge(summaries)
	if err != nil {
		t.Fatal(err)
	}
	oneshot, err := weak.OneShotMerge(summaries)
	if err != nil {
		t.Fatal(err)
	}
	nTree := len(llm.ParseReport(tree).Findings)
	nOne := len(llm.ParseReport(oneshot).Findings)
	if nTree <= nOne {
		t.Errorf("tree merge retained %d findings vs one-shot %d; tree must retain more", nTree, nOne)
	}
	if nTree < len(labels)-1 {
		t.Errorf("tree merge should be near-lossless, retained %d/%d", nTree, len(labels))
	}
}

func TestChatSession(t *testing.T) {
	agent := New(llm.NewSim(), Options{})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	sess := agent.NewSession(res)
	answer, err := sess.Ask("How do I fix the stripe settings / server imbalance issue?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(answer, "lfs setstripe") {
		t.Errorf("answer should include a concrete striping command:\n%s", answer)
	}
	if len(sess.History()) != 2 {
		t.Errorf("history = %d messages, want 2", len(sess.History()))
	}
}

func TestDiagnoseEmptyLogFails(t *testing.T) {
	agent := New(llm.NewSim(), Options{})
	if _, err := agent.Diagnose(darshan.NewLog()); err == nil {
		t.Error("empty log should fail")
	}
}

func TestDisableRAGRemovesReferences(t *testing.T) {
	agent := New(llm.NewSim(), Options{DisableRAG: true})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.AllRefs()) != 0 {
		t.Errorf("RAG disabled but report cites %v", res.Report.AllRefs())
	}
}

func TestStatsByModelSplitsUsage(t *testing.T) {
	agent := New(llm.NewSim(), Options{})
	if _, err := agent.Diagnose(problemLog()); err != nil {
		t.Fatal(err)
	}
	byModel := agent.StatsByModel()
	// The pipeline uses two models: the diagnosis model and the cheap
	// self-reflection filter. Both must accumulate separately.
	for _, model := range []string{llm.GPT4o, llm.GPT4oMini} {
		ms, ok := byModel[model]
		if !ok {
			t.Fatalf("StatsByModel missing %s (have %v)", model, byModel)
		}
		if ms.Calls == 0 || ms.Usage.Total() == 0 {
			t.Errorf("%s stats = %+v, want nonzero calls and tokens", model, ms)
		}
	}
	// Per-model rows must sum to the aggregate Stats.
	usage, cost, calls := agent.Stats()
	var sumTokens, sumCalls int
	var sumCost float64
	for _, ms := range byModel {
		sumTokens += ms.Usage.Total()
		sumCalls += ms.Calls
		sumCost += ms.CostUSD
	}
	if sumTokens != usage.Total() || sumCalls != calls {
		t.Errorf("per-model sums (%d tokens, %d calls) != aggregate (%d, %d)",
			sumTokens, sumCalls, usage.Total(), calls)
	}
	if diff := sumCost - cost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-model cost sum %g != aggregate %g", sumCost, cost)
	}
	// The returned map is a copy: mutating it must not corrupt the agent.
	byModel[llm.GPT4o] = ModelStats{}
	if again := agent.StatsByModel(); again[llm.GPT4o].Calls == 0 {
		t.Error("StatsByModel must return a defensive copy")
	}
}
