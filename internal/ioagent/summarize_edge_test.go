package ioagent

import (
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

// TestSummarizeStdioOnly: a trace touching only the STDIO and LUSTRE
// modules yields exactly those modules' fragments (3 + 3).
func TestSummarizeStdioOnly(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 2, NProcs: 2, UsesMPI: true})
	f := s.Open("/scratch/log.txt", 0, iosim.STDIO, nil)
	for i := int64(0); i < 40; i++ {
		f.WriteAt(0, i*1024, 1024)
	}
	f.Close(0)
	frags := Summarize(s.Finalize())
	if len(frags) != 6 {
		t.Fatalf("got %d fragments, want 6 (STDIO 3 + LUSTRE 3)", len(frags))
	}
	for _, fr := range frags {
		if fr.Module != darshan.ModuleSTDIO && fr.Module != darshan.ModuleLustre {
			t.Errorf("unexpected module fragment %s", fr.ID())
		}
	}
}

// TestSummarizePosixOnlySingleProcess: no MPI-IO fragments, no uses_mpi
// context, and a sensible fragment count (POSIX 6 + LUSTRE 3).
func TestSummarizePosixOnlySingleProcess(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 3, NProcs: 1, UsesMPI: false})
	f := s.Open("/scratch/solo.dat", 0, iosim.POSIX, nil)
	for i := int64(0); i < 32; i++ {
		f.WriteAt(0, i*65536, 65536)
	}
	f.Close(0)
	frags := Summarize(s.Finalize())
	if len(frags) != 9 {
		t.Fatalf("got %d fragments, want 9", len(frags))
	}
	for _, fr := range frags {
		if _, ok := fr.Data[llm.KeyUsesMPI]; ok {
			t.Errorf("non-MPI job fragment carries uses_mpi: %s", fr.ID())
		}
	}
}

// TestFragmentContextConsistency: every fragment of the same log carries
// identical job-context values.
func TestFragmentContextConsistency(t *testing.T) {
	frags := Summarize(problemLog())
	base := frags[0]
	for _, key := range []string{llm.KeyNProcs, llm.KeyBytesWrit, llm.KeySharedFiles, llm.KeyPosixWB} {
		want, ok := base.Data[key]
		if !ok {
			t.Fatalf("context key %s missing from first fragment", key)
		}
		for _, fr := range frags[1:] {
			if got := fr.Data[key]; got != want {
				t.Errorf("fragment %s: %s = %g, want %g", fr.ID(), key, got, want)
			}
		}
	}
}

// TestOneShotMergeOption: the ablation configuration produces a diagnosis
// (possibly lossy) without error.
func TestOneShotMergeOption(t *testing.T) {
	agent := New(llm.NewSim(), Options{UseOneShotMerge: true})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Findings) == 0 {
		t.Error("one-shot merge lost every finding")
	}
	// The tree merge on the same trace should retain at least as many.
	treeAgent := New(llm.NewSim(), Options{})
	treeRes, err := treeAgent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	if len(treeRes.Report.Findings) < len(res.Report.Findings) {
		t.Errorf("tree merge (%d findings) retained fewer than one-shot (%d)",
			len(treeRes.Report.Findings), len(res.Report.Findings))
	}
}

// TestDescriptionMentionsValues: the Fig. 3 transform must verbalize the
// histogram content of the io_size fragment.
func TestDescriptionMentionsValues(t *testing.T) {
	agent := New(llm.NewSim(), Options{})
	res, err := agent.Diagnose(problemLog())
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range res.Fragments {
		if fr.Fragment.ID() != "POSIX/io_size" {
			continue
		}
		if !containsAny(fr.Description, "bin indicates", "classifies them as small") {
			t.Errorf("io_size description lacks verbalized values:\n%s", fr.Description)
		}
		return
	}
	t.Fatal("POSIX/io_size fragment missing")
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}
