package ioagent

import (
	"fmt"
	"sort"
	"strings"

	"ioagent/internal/darshan"
)

// ModuleCSV renders one module's records as a CSV table
// (file,rank,counter,value), the intermediate representation the paper's
// pre-processor writes per module before summary extraction.
func ModuleCSV(log *darshan.Log, m darshan.ModuleID) string {
	md, ok := log.Modules[m]
	if !ok || len(md.Records) == 0 {
		return ""
	}
	md.SortRecords()
	var b strings.Builder
	b.WriteString("file,rank,counter,value\n")
	for _, r := range md.Records {
		for _, name := range darshan.CounterNames(m) {
			if v, ok := r.Counters[name]; ok {
				fmt.Fprintf(&b, "%s,%d,%s,%d\n", r.Name, r.Rank, name, v)
			}
		}
		for _, name := range darshan.FCounterNames(m) {
			if v, ok := r.FCounters[name]; ok {
				fmt.Fprintf(&b, "%s,%d,%s,%.6f\n", r.Name, r.Rank, name, v)
			}
		}
	}
	return b.String()
}

// SplitModules returns the per-module CSV tables for every populated module.
func SplitModules(log *darshan.Log) map[darshan.ModuleID]string {
	out := make(map[darshan.ModuleID]string)
	for _, m := range log.ModuleList() {
		if csv := ModuleCSV(log, m); csv != "" {
			out[m] = csv
		}
	}
	return out
}

// Fragment is one categorized JSON summary fragment (Table I cell).
type Fragment struct {
	Module   darshan.ModuleID
	Category string
	// Data holds the numeric derived metrics (keys from internal/llm's
	// derived-key vocabulary plus category-specific extras).
	Data map[string]float64
	// Strs holds string-valued fields (mount points etc.).
	Strs map[string]string
}

// JSON renders the fragment deterministically (sorted keys) with module and
// category first, matching the structure the describe/diagnose prompts use.
func (f *Fragment) JSON() string {
	var b strings.Builder
	b.WriteString("{")
	fmt.Fprintf(&b, "%q: %q, %q: %q", "module", f.Module.String(), "category", f.Category)

	skeys := make([]string, 0, len(f.Strs))
	for k := range f.Strs {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	for _, k := range skeys {
		fmt.Fprintf(&b, ", %q: %q", k, f.Strs[k])
	}

	nkeys := make([]string, 0, len(f.Data))
	for k := range f.Data {
		nkeys = append(nkeys, k)
	}
	sort.Strings(nkeys)
	for _, k := range nkeys {
		v := f.Data[k]
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, ", %q: %d", k, int64(v))
		} else {
			fmt.Fprintf(&b, ", %q: %.4f", k, v)
		}
	}
	b.WriteString("}")
	return b.String()
}

// ID returns a stable fragment identifier like "POSIX/io_size".
func (f *Fragment) ID() string {
	return f.Module.String() + "/" + f.Category
}
