package ioagent

import (
	"fmt"

	"ioagent/internal/darshan"
	"ioagent/internal/llm"
)

// Summary category identifiers (Table I columns).
const (
	CatIOSize        = "io_size"
	CatRequestCount  = "request_count"
	CatFileMetadata  = "file_metadata"
	CatRank          = "rank"
	CatAlignment     = "alignment"
	CatOrder         = "order"
	CatMount         = "mount"
	CatStripeSetting = "stripe_setting"
	CatServerUsage   = "server_usage"
)

// CategoryCoverage is the Table I matrix: which summary categories each
// module extracts.
var CategoryCoverage = map[darshan.ModuleID][]string{
	darshan.ModulePOSIX:  {CatIOSize, CatRequestCount, CatFileMetadata, CatRank, CatAlignment, CatOrder},
	darshan.ModuleMPIIO:  {CatIOSize, CatRequestCount, CatFileMetadata, CatRank, CatAlignment},
	darshan.ModuleSTDIO:  {CatIOSize, CatRequestCount, CatFileMetadata},
	darshan.ModuleLustre: {CatMount, CatStripeSetting, CatServerUsage},
}

// Summarize runs the per-module summary extraction functions over the log
// and returns every fragment the trace supports, in deterministic order.
// Each fragment carries the broader application context (runtime, process
// count, interface byte shares, shared-file and collective-op totals) the
// paper includes so cross-module reasoning survives fragmentation.
func Summarize(log *darshan.Log) []*Fragment {
	ctx := jobContext(log)
	var frags []*Fragment
	for _, m := range log.ModuleList() {
		for _, cat := range CategoryCoverage[m] {
			frag := extract(log, m, cat)
			if frag == nil {
				continue
			}
			for k, v := range ctx {
				if _, exists := frag.Data[k]; !exists {
					frag.Data[k] = v
				}
			}
			frags = append(frags, frag)
		}
	}
	if log.DXT != nil {
		frag := dxtFragment(log)
		for k, v := range ctx {
			if _, exists := frag.Data[k]; !exists {
				frag.Data[k] = v
			}
		}
		frags = append(frags, frag)
	}
	return frags
}

// dxtFragment renders the per-operation extended-tracing evidence as one
// summary fragment: numeric temporal surfaces (event count, burst
// structure, straggler ratio) plus the compact dxt.Summary prose, so the
// describe/diagnose prompts see the timeline the aggregate counters
// cannot carry.
func dxtFragment(log *darshan.Log) *Fragment {
	t := log.DXT
	var span float64
	for _, tl := range t.Timelines() {
		if tl.Last > span {
			span = tl.Last
		}
	}
	_, ratio := t.StragglerRank()
	return &Fragment{
		Module:   darshan.ModulePOSIX,
		Category: "dxt_temporal",
		Data: map[string]float64{
			"dxt_events":          float64(len(t.Events)),
			"dxt_bursts":          float64(len(t.Bursts(0.050, 8))),
			"dxt_straggler_ratio": ratio,
			"dxt_span_seconds":    span,
		},
		Strs: map[string]string{"dxt_summary": t.Summary()},
	}
}

// jobContext computes the application-wide context included in every
// fragment.
func jobContext(log *darshan.Log) map[string]float64 {
	ctx := map[string]float64{
		llm.KeyNProcs:  float64(log.Job.NProcs),
		llm.KeyRuntime: log.Job.RunTime,
	}
	if log.Job.Metadata["mpi"] == "1" || log.HasModule(darshan.ModuleMPIIO) {
		ctx[llm.KeyUsesMPI] = 1
	}

	var posixB, stdioB, mpiioB float64
	if md, ok := log.Modules[darshan.ModulePOSIX]; ok {
		pr := float64(md.SumC("POSIX_BYTES_READ"))
		pw := float64(md.SumC("POSIX_BYTES_WRITTEN"))
		posixB = pr + pw
		ctx[llm.KeyPosixRB] = pr
		ctx[llm.KeyPosixWB] = pw
	}
	if md, ok := log.Modules[darshan.ModuleSTDIO]; ok {
		stdioB = float64(md.SumC("STDIO_BYTES_READ") + md.SumC("STDIO_BYTES_WRITTEN"))
	}
	if md, ok := log.Modules[darshan.ModuleMPIIO]; ok {
		mpiioB = float64(md.SumC("MPIIO_BYTES_READ") + md.SumC("MPIIO_BYTES_WRITTEN"))
		ctx[llm.KeyCollWrites] = float64(md.SumC("MPIIO_COLL_WRITES"))
		ctx[llm.KeyCollReads] = float64(md.SumC("MPIIO_COLL_READS"))
		ctx[llm.KeyIndepWrites] = float64(md.SumC("MPIIO_INDEP_WRITES"))
		ctx[llm.KeyIndepReads] = float64(md.SumC("MPIIO_INDEP_READS"))
	}
	total := posixB + stdioB
	if total > 0 {
		ctx[llm.KeyPosixShr] = posixB / total
		ctx[llm.KeyStdioShr] = stdioB / total
		if mpiioB > 0 {
			ctx[llm.KeyMpiioShr] = mpiioB / total
		}
	}

	read, written := log.TotalBytes()
	ctx[llm.KeyBytesRead] = float64(read)
	ctx[llm.KeyBytesWrit] = float64(written)
	ctx[llm.KeySharedFiles] = sharedDataFiles(log)
	return ctx
}

func sharedDataFiles(log *darshan.Log) float64 {
	md, ok := log.Modules[darshan.ModulePOSIX]
	if !ok {
		return 0
	}
	var n float64
	for _, r := range md.Records {
		if r.Rank == darshan.SharedRank &&
			r.C("POSIX_BYTES_READ")+r.C("POSIX_BYTES_WRITTEN") > 0 {
			n++
		}
	}
	return n
}

// extract dispatches to the per-module, per-category extraction function.
func extract(log *darshan.Log, m darshan.ModuleID, cat string) *Fragment {
	frag := &Fragment{Module: m, Category: cat, Data: map[string]float64{}, Strs: map[string]string{}}
	md := log.Modules[m]
	switch m {
	case darshan.ModulePOSIX:
		posixExtract(log, md, cat, frag)
	case darshan.ModuleMPIIO:
		mpiioExtract(log, md, cat, frag)
	case darshan.ModuleSTDIO:
		stdioExtract(md, cat, frag)
	case darshan.ModuleLustre:
		lustreExtract(log, md, cat, frag)
	}
	return frag
}

var histSuffixes = []string{
	"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
	"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
}

// smallSuffixes are the buckets under 1 MiB.
var smallSuffixes = map[string]bool{
	"0_100": true, "100_1K": true, "1K_10K": true, "10K_100K": true, "100K_1M": true,
}

func histFractions(md *darshan.ModuleData, prefix, op string, frag *Fragment, histKey string) (smallFrac float64, total float64) {
	for _, s := range histSuffixes {
		total += float64(md.SumC(prefix + "_SIZE_" + op + "_" + s))
	}
	if total == 0 {
		return 0, 0
	}
	for _, s := range histSuffixes {
		n := float64(md.SumC(prefix + "_SIZE_" + op + "_" + s))
		if n == 0 {
			continue
		}
		frac := n / total
		frag.Data[fmt.Sprintf("%s_%s", histKey, s)] = frac
		if smallSuffixes[s] {
			smallFrac += frac
		}
	}
	return smallFrac, total
}

func posixExtract(log *darshan.Log, md *darshan.ModuleData, cat string, frag *Fragment) {
	switch cat {
	case CatIOSize:
		reads := float64(md.SumC("POSIX_READS"))
		writes := float64(md.SumC("POSIX_WRITES"))
		frag.Data[llm.KeyReads] = reads
		frag.Data[llm.KeyWrites] = writes
		if sf, total := histFractions(md, "POSIX", "READ", frag, "read_hist"); total > 0 {
			frag.Data[llm.KeySmallReadFrac] = sf
		}
		if sf, total := histFractions(md, "POSIX", "WRITE", frag, "write_hist"); total > 0 {
			frag.Data[llm.KeySmallWriteFrac] = sf
		}
		if sz := dominantAccess(md, "POSIX"); sz > 0 {
			frag.Data[llm.KeyAccessSize] = sz
		}
	case CatRequestCount:
		frag.Data[llm.KeyReads] = float64(md.SumC("POSIX_READS"))
		frag.Data[llm.KeyWrites] = float64(md.SumC("POSIX_WRITES"))
		frag.Data["seek_ops"] = float64(md.SumC("POSIX_SEEKS"))
		frag.Data["rw_switches"] = float64(md.SumC("POSIX_RW_SWITCHES"))
		frag.Data["distinct_files"] = float64(len(md.Files()))
	case CatFileMetadata:
		opens := float64(md.SumC("POSIX_OPENS"))
		stats := float64(md.SumC("POSIX_STATS"))
		fsyncs := float64(md.SumC("POSIX_FSYNCS"))
		frag.Data["open_ops"] = opens
		frag.Data["stat_ops"] = stats
		frag.Data["fsync_ops"] = fsyncs
		n := float64(log.Job.NProcs)
		if n < 1 {
			n = 1
		}
		frag.Data[llm.KeyMetaOpsPerProc] = (opens + stats) / n
		meta := md.SumF("POSIX_F_META_TIME")
		data := md.SumF("POSIX_F_READ_TIME") + md.SumF("POSIX_F_WRITE_TIME")
		if meta+data > 0 {
			frag.Data[llm.KeyMetaTimeFrac] = meta / (meta + data)
		}
	case CatRank:
		// Per-rank balance, over the dominant shared file.
		var slow, fast, totalT float64
		var slowB, fastB float64
		for _, r := range md.Records {
			totalT += r.F("POSIX_F_READ_TIME") + r.F("POSIX_F_WRITE_TIME")
			if r.Rank != darshan.SharedRank {
				continue
			}
			if st := r.F("POSIX_F_SLOWEST_RANK_TIME"); st > slow {
				slow = st
				fast = r.F("POSIX_F_FASTEST_RANK_TIME")
				slowB = float64(r.C("POSIX_SLOWEST_RANK_BYTES"))
				fastB = float64(r.C("POSIX_FASTEST_RANK_BYTES"))
			}
		}
		n := float64(log.Job.NProcs)
		if n > 1 && slow > 0 && totalT > 0 {
			frag.Data[llm.KeyRankSlowRatio] = slow / (totalT / n)
			_ = fast
			if fastB > 0 {
				frag.Data[llm.KeyRankByteRatio] = slowB / fastB
			}
		}
	case CatAlignment:
		mis, reads, writes := misalignment(md)
		if reads > 0 {
			frag.Data[llm.KeyUnalignedRead] = mis.read / reads
		}
		if writes > 0 {
			frag.Data[llm.KeyUnalignedWrite] = mis.write / writes
		}
		if len(md.Records) > 0 {
			frag.Data["file_alignment"] = float64(md.Records[0].C("POSIX_FILE_ALIGNMENT"))
		}
	case CatOrder:
		reads := float64(md.SumC("POSIX_READS"))
		writes := float64(md.SumC("POSIX_WRITES"))
		if reads > 0 {
			frag.Data[llm.KeySeqReadFrac] = float64(md.SumC("POSIX_SEQ_READS")) / reads
			frag.Data["consec_read_fraction"] = float64(md.SumC("POSIX_CONSEC_READS")) / reads
		}
		if writes > 0 {
			frag.Data[llm.KeySeqWriteFrac] = float64(md.SumC("POSIX_SEQ_WRITES")) / writes
			frag.Data["consec_write_fraction"] = float64(md.SumC("POSIX_CONSEC_WRITES")) / writes
		}
		if stride := dominantStride(md); stride > 0 {
			frag.Data["dominant_stride"] = stride
		}
		// Re-read detection lives here: it is an access-order property.
		if rr := rereadFactor(md); rr > 0 {
			frag.Data[llm.KeyRereadFactor] = rr
		}
	}
}

type misCount struct{ read, write float64 }

func misalignment(md *darshan.ModuleData) (mis misCount, reads, writes float64) {
	for _, r := range md.Records {
		na := float64(r.C("POSIX_FILE_NOT_ALIGNED"))
		rd := float64(r.C("POSIX_READS"))
		wr := float64(r.C("POSIX_WRITES"))
		reads += rd
		writes += wr
		if rd+wr == 0 {
			continue
		}
		mis.read += na * rd / (rd + wr)
		mis.write += na * wr / (rd + wr)
	}
	return mis, reads, writes
}

func dominantAccess(md *darshan.ModuleData, prefix string) float64 {
	var bestSize, bestCount int64
	for _, r := range md.Records {
		sz := r.C(prefix + "_ACCESS1_ACCESS")
		ct := r.C(prefix + "_ACCESS1_COUNT")
		if ct > bestCount {
			bestCount, bestSize = ct, sz
		}
	}
	return float64(bestSize)
}

func dominantStride(md *darshan.ModuleData) float64 {
	var bestStride, bestCount int64
	for _, r := range md.Records {
		st := r.C("POSIX_STRIDE1_STRIDE")
		ct := r.C("POSIX_STRIDE1_COUNT")
		if ct > bestCount {
			bestCount, bestStride = ct, st
		}
	}
	return float64(bestStride)
}

func rereadFactor(md *darshan.ModuleData) float64 {
	var best float64
	for _, r := range md.Records {
		br := float64(r.C("POSIX_BYTES_READ"))
		extent := float64(r.C("POSIX_MAX_BYTE_READ") + 1)
		if br > 0 && extent > 1 {
			if f := br / extent; f > best {
				best = f
			}
		}
	}
	return best
}

func mpiioExtract(log *darshan.Log, md *darshan.ModuleData, cat string, frag *Fragment) {
	switch cat {
	case CatIOSize:
		frag.Data["mpiio_bytes_read"] = float64(md.SumC("MPIIO_BYTES_READ"))
		frag.Data["mpiio_bytes_written"] = float64(md.SumC("MPIIO_BYTES_WRITTEN"))
		// The MPI-IO layer's request sizes feed the same small-request
		// vocabulary the POSIX fragment uses: small MPI-IO requests are
		// small writes/reads regardless of layer.
		if sf, total := histFractions(md, "MPIIO", "READ_AGG", frag, "mpiio_read_hist"); total > 0 {
			frag.Data[llm.KeySmallReadFrac] = sf
		}
		if sf, total := histFractions(md, "MPIIO", "WRITE_AGG", frag, "mpiio_write_hist"); total > 0 {
			frag.Data[llm.KeySmallWriteFrac] = sf
		}
	case CatRequestCount:
		frag.Data[llm.KeyCollReads] = float64(md.SumC("MPIIO_COLL_READS"))
		frag.Data[llm.KeyCollWrites] = float64(md.SumC("MPIIO_COLL_WRITES"))
		frag.Data[llm.KeyIndepReads] = float64(md.SumC("MPIIO_INDEP_READS"))
		frag.Data[llm.KeyIndepWrites] = float64(md.SumC("MPIIO_INDEP_WRITES"))
		frag.Data["coll_opens"] = float64(md.SumC("MPIIO_COLL_OPENS"))
		frag.Data["indep_opens"] = float64(md.SumC("MPIIO_INDEP_OPENS"))
	case CatFileMetadata:
		meta := md.SumF("MPIIO_F_META_TIME")
		data := md.SumF("MPIIO_F_READ_TIME") + md.SumF("MPIIO_F_WRITE_TIME")
		if meta+data > 0 {
			frag.Data["mpiio_meta_time_fraction"] = meta / (meta + data)
		}
		frag.Data["mpiio_files"] = float64(len(md.Files()))
	case CatRank:
		var slowB, fastB float64
		for _, r := range md.Records {
			if r.Rank != darshan.SharedRank {
				continue
			}
			if b := float64(r.C("MPIIO_SLOWEST_RANK_BYTES")); b > slowB {
				slowB = b
				fastB = float64(r.C("MPIIO_FASTEST_RANK_BYTES"))
			}
		}
		if fastB > 0 {
			frag.Data[llm.KeyRankByteRatio] = slowB / fastB
		}
	case CatAlignment:
		// MPI-IO records no alignment counters; report the alignment of
		// the underlying POSIX accesses for MPI-IO-visited files.
		pmd, ok := log.Modules[darshan.ModulePOSIX]
		if !ok {
			return
		}
		mpiFiles := make(map[string]bool)
		for _, r := range md.Records {
			mpiFiles[r.Name] = true
		}
		sub := &darshan.ModuleData{Module: darshan.ModulePOSIX}
		for _, r := range pmd.Records {
			if mpiFiles[r.Name] {
				sub.Records = append(sub.Records, r)
			}
		}
		mis, reads, writes := misalignment(sub)
		if reads > 0 {
			frag.Data[llm.KeyUnalignedRead] = mis.read / reads
		}
		if writes > 0 {
			frag.Data[llm.KeyUnalignedWrite] = mis.write / writes
		}
	}
}

func stdioExtract(md *darshan.ModuleData, cat string, frag *Fragment) {
	switch cat {
	case CatIOSize:
		frag.Data[llm.KeyStdioReadByt] = float64(md.SumC("STDIO_BYTES_READ"))
		frag.Data[llm.KeyStdioWriteByt] = float64(md.SumC("STDIO_BYTES_WRITTEN"))
	case CatRequestCount:
		frag.Data["stdio_read_ops"] = float64(md.SumC("STDIO_READS"))
		frag.Data["stdio_write_ops"] = float64(md.SumC("STDIO_WRITES"))
		frag.Data["stdio_flushes"] = float64(md.SumC("STDIO_FLUSHES"))
	case CatFileMetadata:
		frag.Data["stdio_opens"] = float64(md.SumC("STDIO_OPENS"))
		frag.Data["stdio_files"] = float64(len(md.Files()))
	}
}

func lustreExtract(log *darshan.Log, md *darshan.ModuleData, cat string, frag *Fragment) {
	pmd := log.Modules[darshan.ModulePOSIX]
	switch cat {
	case CatMount:
		frag.Data["lustre_files"] = float64(len(md.Files()))
		for _, m := range log.Job.Mounts {
			if m.FSType == "lustre" {
				frag.Strs["mount_point"] = m.Point
				frag.Strs["fs_type"] = m.FSType
				break
			}
		}
	case CatStripeSetting:
		var width, size, osts float64
		var largeNarrow, largest float64
		for _, r := range md.Records {
			w := float64(r.C("LUSTRE_STRIPE_WIDTH"))
			s := float64(r.C("LUSTRE_STRIPE_SIZE"))
			if width == 0 {
				width, size = w, s
			}
			osts = float64(r.C("LUSTRE_OSTS"))
			extent := fileExtent(pmd, r.Name)
			if extent > largest {
				largest = extent
			}
			if w <= 1 && s > 0 && extent > 4*s {
				largeNarrow++
			}
		}
		frag.Data[llm.KeyStripeWidth] = width
		frag.Data[llm.KeyStripeSize] = size
		frag.Data[llm.KeyNumOSTs] = osts
		frag.Data[llm.KeyWideFiles] = largeNarrow
		frag.Data[llm.KeyLargestFile] = largest
		if pmd != nil {
			if sz := dominantAccess(pmd, "POSIX"); sz > 0 {
				frag.Data[llm.KeyAccessSize] = sz
			}
		}
	case CatServerUsage:
		used := make(map[int64]bool)
		var osts float64
		for _, r := range md.Records {
			osts = float64(r.C("LUSTRE_OSTS"))
			w := int(r.C("LUSTRE_STRIPE_WIDTH"))
			for i := 0; i < w && i < darshan.MaxLustreOSTs; i++ {
				used[r.C(fmt.Sprintf("LUSTRE_OST_ID_%d", i))] = true
			}
		}
		frag.Data[llm.KeyNumOSTs] = osts
		if osts > 0 {
			frag.Data[llm.KeyOSTCoverage] = float64(len(used)) / osts
		}
	}
}

func fileExtent(pmd *darshan.ModuleData, name string) float64 {
	if pmd == nil {
		return 0
	}
	var extent float64
	for _, r := range pmd.Records {
		if r.Name != name {
			continue
		}
		if e := float64(r.C("POSIX_MAX_BYTE_WRITTEN") + 1); e > extent {
			extent = e
		}
		if e := float64(r.C("POSIX_MAX_BYTE_READ") + 1); e > extent {
			extent = e
		}
	}
	return extent
}
