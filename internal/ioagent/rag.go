package ioagent

import (
	"fmt"
	"strings"
	"sync"

	"ioagent/internal/llm"
	"ioagent/internal/vectordb"
)

// retrieved is one knowledge chunk that survived retrieval (and, when
// enabled, the self-reflection filter).
type retrieved struct {
	Key   string
	Title string
	Text  string
	Score float64
}

// describeFragment asks the model to transform a JSON fragment into natural
// language (paper Fig. 3) for embedding-based retrieval.
func (a *Agent) describeFragment(frag *Fragment) (string, llm.Usage, error) {
	prompt := "TASK: describe\n" +
		"Transform the following Darshan summary fragment into a natural-language description a domain scientist can read. " +
		"Explain every value, including histogram bins, in complete sentences.\n" +
		frag.JSON() + "\n"
	resp, err := a.client.Complete(llm.Prompt(a.model, prompt))
	if err != nil {
		return "", llm.Usage{}, fmt.Errorf("describe %s: %w", frag.ID(), err)
	}
	a.addCost(resp)
	return resp.Content, resp.Usage, nil
}

// retrieve queries the knowledge plane (when configured) or the embedded
// vector index with the natural-language description and returns the top-k
// chunks (paper: k = 15).
func (a *Agent) retrieve(nl string) []retrieved {
	if a.opts.DisableRAG {
		return nil
	}
	var hits []vectordb.Hit
	switch {
	case a.retriever != nil:
		hits = a.retriever.Retrieve(nl, a.opts.TopK)
	case a.index != nil:
		hits = a.index.Search(nl, a.opts.TopK)
	default:
		return nil
	}
	out := make([]retrieved, 0, len(hits))
	for _, h := range hits {
		out = append(out, retrieved{
			Key: h.Chunk.DocKey, Title: h.Chunk.DocTitle,
			Text: h.Chunk.Text, Score: h.Score,
		})
	}
	return out
}

// selfReflect filters the retrieved sources with the cheaper model, in
// parallel (paper Section IV-B3): each source is judged for relevance to
// the fragment and irrelevant ones are dropped. A failed filter call fails
// the whole pass — swallowing it would silently drop a source and let a
// transient backend error degrade the diagnosis (which the fleet layer
// would then cache), instead of surfacing as retryable.
func (a *Agent) selfReflect(nl string, sources []retrieved) ([]retrieved, error) {
	if a.opts.DisableReflection || len(sources) == 0 {
		return sources, nil
	}
	keep := make([]bool, len(sources))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range sources {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prompt := "TASK: filter\n" +
				"Decide whether the SOURCE below is relevant to the FRAGMENT. Answer YES or NO with a reason.\n" +
				"FRAGMENT:\n" + nl + "\nEND FRAGMENT\n" +
				fmt.Sprintf("[SOURCE %s] %s\n", sources[i].Key, sources[i].Text)
			resp, err := a.client.Complete(llm.Prompt(a.cheapModel, prompt))
			if err == nil {
				a.addCost(resp)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			keep[i] = strings.HasPrefix(resp.Content, "YES")
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("filter: %w", firstErr)
	}
	var out []retrieved
	for i, k := range keep {
		if k {
			out = append(out, sources[i])
		}
	}
	return out, nil
}

// diagnoseFragment produces the grounded per-fragment diagnosis.
func (a *Agent) diagnoseFragment(frag *Fragment, nl string, sources []retrieved) (string, error) {
	var b strings.Builder
	b.WriteString("TASK: diagnose\n")
	b.WriteString("You are an expert HPC I/O analyst. Diagnose any I/O performance issues evidenced by this summary fragment. ")
	b.WriteString("Justify each issue with the concrete values and cite the supporting sources.\n\n")
	b.WriteString("Fragment (JSON):\n" + frag.JSON() + "\n\n")
	b.WriteString("Fragment (description):\n" + nl + "\n")
	if len(sources) > 0 {
		b.WriteString("\nRetrieved domain knowledge:\n")
		for _, s := range sources {
			fmt.Fprintf(&b, "[SOURCE %s] %s\n", s.Key, s.Text)
		}
	}
	resp, err := a.client.Complete(llm.Prompt(a.model, b.String()))
	if err != nil {
		return "", fmt.Errorf("diagnose %s: %w", frag.ID(), err)
	}
	a.addCost(resp)
	return resp.Content, nil
}

// BuildIndexFromDocs indexes arbitrary documents with the paper's chunking
// parameters; exposed so callers can supply their own corpora.
func BuildIndexFromDocs(docs []vectordb.Document) *vectordb.Index {
	ix := vectordb.New(vectordb.Options{ChunkSize: 512, Overlap: 20})
	for _, d := range docs {
		ix.Add(d)
	}
	return ix
}
