// Package ioagent implements the paper's primary contribution: an LLM agent
// that produces trustworthy, referenced diagnoses of HPC I/O performance
// issues from Darshan traces.
//
// The pipeline follows Fig. 2 of the paper:
//
//  1. Module-based pre-processing (preprocess.go, summarize.go): the Darshan
//     log is split into per-module CSV tables, and each module is reduced to
//     categorized JSON summary fragments per Table I (I/O Size, I/O Request
//     Count, File Metadata, Rank, Alignment, Order for POSIX; a subset for
//     MPI-IO and STDIO; Mount, Stripe Setting, Server Usage for LUSTRE).
//     Every fragment carries broader application context (runtime, process
//     count, per-interface byte shares) so downstream diagnosis can reason
//     across modules.
//  2. Domain Knowledge Integration (rag.go): each fragment is transformed
//     into natural language by an LLM (Fig. 3), embedded, and matched
//     against a vector index of 66 HPC-I/O publications (top-15, cosine).
//     A cheaper model then runs a parallel self-reflection pass that filters
//     out irrelevant sources, and the main model produces a per-fragment
//     diagnosis grounded in (and citing) the surviving sources.
//  3. Tree-based Merge (merge.go): the per-fragment diagnoses are merged
//     pairwise, level by level, in parallel — the regime every model
//     handles reliably — rather than in one shot, which loses findings and
//     references (Fig. 6).
//
// The resulting report supports continued interaction (chat.go): users ask
// follow-up questions and receive answers grounded in the diagnosis and its
// references (Fig. 5).
//
// # Concurrency
//
// A single Agent may run many Diagnose calls at once — the fleet worker
// pool (internal/fleet) reuses one Agent across every worker. All mutable
// agent state (the usage/cost accumulators) is mutex-guarded, the knowledge
// index is safe for concurrent search, and each Diagnose works on its own
// fragment slices, so concurrent diagnoses never share unsynchronized
// state. The one requirement the agent inherits from its constructor is
// that the llm.Client must itself be safe for concurrent use (SimLLM and
// the wrappers in internal/llm are). Sessions are the exception: a Session
// accumulates conversation history without locking and must be confined to
// one goroutine, though separate Sessions of the same Agent are
// independent.
package ioagent
