package ioagent

import (
	"fmt"
	"strings"
	"sync"

	"ioagent/internal/llm"
)

// mergePair asks the model to merge two (or, for the one-shot ablation,
// many) diagnosis summaries into one.
func (a *Agent) mergeCall(summaries []string) (string, error) {
	var b strings.Builder
	b.WriteString("TASK: merge\n")
	b.WriteString("Merge the following diagnosis summaries into a single comprehensive diagnosis. ")
	b.WriteString("Remove redundancy, resolve contradictions, and keep every distinct finding with its references.\n")
	for i, s := range summaries {
		fmt.Fprintf(&b, "--- SUMMARY %d ---\n%s\n", i+1, s)
	}
	b.WriteString("--- END SUMMARIES ---\n")
	resp, err := a.client.Complete(llm.Prompt(a.model, b.String()))
	if err != nil {
		return "", fmt.Errorf("merge: %w", err)
	}
	a.addCost(resp)
	return resp.Content, nil
}

// TreeMerge merges diagnosis summaries pairwise, level by level, running
// each level's merges in parallel (paper Section IV-C). An odd summary is
// carried to the next level unmerged.
func (a *Agent) TreeMerge(summaries []string) (string, error) {
	if len(summaries) == 0 {
		return "", fmt.Errorf("ioagent: nothing to merge")
	}
	level := append([]string(nil), summaries...)
	for len(level) > 1 {
		pairs := len(level) / 2
		next := make([]string, pairs)
		errs := make([]error, pairs)
		var wg sync.WaitGroup
		for i := 0; i < pairs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				next[i], errs[i] = a.mergeCall([]string{level[2*i], level[2*i+1]})
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return "", err
			}
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0], nil
}

// OneShotMerge merges all summaries in a single call — the ablation
// baseline of Fig. 6, which loses findings and references as the fan-in
// exceeds the model's merge capacity.
func (a *Agent) OneShotMerge(summaries []string) (string, error) {
	if len(summaries) == 0 {
		return "", fmt.Errorf("ioagent: nothing to merge")
	}
	if len(summaries) == 1 {
		return summaries[0], nil
	}
	return a.mergeCall(summaries)
}
