package llm

import (
	"testing"

	"ioagent/internal/issue"
)

const sampleTrace = `# darshan log version: 3.41
# exe: /bin/app.x
# nprocs: 8
# run time: 722.0000
# metadata: mpi = 1
# mount entry:	/scratch	lustre

POSIX	-1	111	POSIX_OPENS	16	/scratch/out.dat	/scratch	lustre
POSIX	-1	111	POSIX_WRITES	1000	/scratch/out.dat	/scratch	lustre
POSIX	-1	111	POSIX_BYTES_WRITTEN	65536000	/scratch/out.dat	/scratch	lustre
POSIX	-1	111	POSIX_MAX_BYTE_WRITTEN	65535999	/scratch/out.dat	/scratch	lustre
POSIX	-1	111	POSIX_SEQ_WRITES	990	/scratch/out.dat	/scratch	lustre
POSIX	-1	111	POSIX_SIZE_WRITE_10K_100K	1000	/scratch/out.dat	/scratch	lustre
POSIX	0	222	POSIX_READS	10	/scratch/cfg	/scratch	lustre
MPI-IO	-1	111	MPIIO_INDEP_WRITES	1000	/scratch/out.dat	/scratch	lustre
LUSTRE	-1	111	LUSTRE_STRIPE_WIDTH	1	/scratch/out.dat	/scratch	lustre
LUSTRE	-1	111	LUSTRE_STRIPE_SIZE	1048576	/scratch/out.dat	/scratch	lustre
LUSTRE	-1	111	LUSTRE_OSTS	16	/scratch/out.dat	/scratch	lustre
`

func TestExtractFactsTrace(t *testing.T) {
	f := ExtractFacts(sampleTrace)
	if f.NProcs != 8 || f.RunTime != 722 || !f.UsesMPI {
		t.Errorf("header facts wrong: %+v", f)
	}
	if f.C("POSIX_WRITES") != 1000 {
		t.Errorf("POSIX_WRITES = %g", f.C("POSIX_WRITES"))
	}
	if !f.SharedFiles["/scratch/out.dat"] {
		t.Error("shared file not detected from rank -1")
	}
	if f.SharedFiles["/scratch/cfg"] {
		t.Error("rank-0 file wrongly marked shared")
	}
	if f.Files["/scratch/out.dat"]["LUSTRE_STRIPE_WIDTH"] != 1 {
		t.Error("per-file lustre counters missing")
	}
	if pos := f.Pos["POSIX_OPENS"]; pos <= 0 || pos >= 1 {
		t.Errorf("position for POSIX_OPENS = %g", pos)
	}
}

func TestExtractFactsJSON(t *testing.T) {
	prompt := `TASK: diagnose
{"module": "POSIX", "category": "io_size", "nprocs": 16, "runtime_s": 100.5,
 "small_write_fraction": 0.85, "write_ops": 49152, "uses_mpi": 1}`
	f := ExtractFacts(prompt)
	if f.NProcs != 16 || f.RunTime != 100.5 || !f.UsesMPI {
		t.Errorf("JSON job context not extracted: %+v", f)
	}
	if v, ok := f.D(KeySmallWriteFrac); !ok || v != 0.85 {
		t.Errorf("small_write_fraction = %g, %v", v, ok)
	}
	if f.DerivedStr["module"] != "POSIX" {
		t.Errorf("module = %q", f.DerivedStr["module"])
	}
}

func TestExtractSourcesAndCandidates(t *testing.T) {
	prompt := `TASK: rank
CRITERION: accuracy
GROUND TRUTH ISSUES:
- Small Write I/O Requests
- Shared File Access

FORMAT ORDER: 1, 0
=== CANDIDATE Tool-1 ===
ISSUE: Small Write I/O Requests
=== CANDIDATE Tool-2 ===
ISSUE: High Metadata Load
=== END CANDIDATES ===
[SOURCE yang2019smallwrite] small writes hurt bandwidth
`
	f := ExtractFacts(prompt)
	if len(f.Candidates) != 2 || f.Candidates[0].Name != "Tool-1" {
		t.Fatalf("candidates = %+v", f.Candidates)
	}
	if len(f.Truth) != 2 {
		t.Errorf("truth = %v", f.Truth)
	}
	if f.Criterion != "accuracy" {
		t.Errorf("criterion = %q", f.Criterion)
	}
	if len(f.Sources) != 1 || f.Sources[0].Key != "yang2019smallwrite" {
		t.Errorf("sources = %+v", f.Sources)
	}
}

func TestViewFallbackDerivation(t *testing.T) {
	f := ExtractFacts(sampleTrace)
	v := NewView(f)
	if frac, ok := v.SmallWriteFraction(); !ok || frac != 1.0 {
		t.Errorf("SmallWriteFraction = %g, %v; want 1.0 from histogram", frac, ok)
	}
	if seq, ok := v.SeqWriteFraction(); !ok || seq != 0.99 {
		t.Errorf("SeqWriteFraction = %g, %v", seq, ok)
	}
	if shared, ok := v.SharedDataFiles(); !ok || shared != 1 {
		t.Errorf("SharedDataFiles = %g, %v", shared, ok)
	}
}

func TestViewPrefersDerived(t *testing.T) {
	prompt := `{"small_write_fraction": 0.42, "write_ops": 100}`
	v := NewView(ExtractFacts(prompt))
	if frac, ok := v.SmallWriteFraction(); !ok || frac != 0.42 {
		t.Errorf("derived small fraction = %g, %v", frac, ok)
	}
}

func TestRunRulesOnTrace(t *testing.T) {
	f := ExtractFacts(sampleTrace)
	hits := runRules(NewView(f))
	got := make(map[issue.Label]bool)
	for _, h := range hits {
		got[h.label] = true
	}
	for _, want := range []issue.Label{issue.SmallWrites, issue.SharedFileAccess, issue.NoCollectiveWrite, issue.ServerImbalance} {
		if !got[want] {
			t.Errorf("rule for %q did not fire; fired: %v", want, keysOf(got))
		}
	}
	if got[issue.RandomWrites] {
		t.Error("sequential trace should not flag random writes")
	}
	if got[issue.MultiProcessNoMPI] {
		t.Error("MPI job should not flag multi-process-without-MPI")
	}
}

func keysOf(m map[issue.Label]bool) []issue.Label {
	var out []issue.Label
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRuleMultiProcessNoMPI(t *testing.T) {
	prompt := `# nprocs: 4
POSIX	0	1	POSIX_WRITES	100	/scratch/a	/scratch	lustre
POSIX	0	1	POSIX_BYTES_WRITTEN	1000000	/scratch/a	/scratch	lustre
`
	hits := runRules(NewView(ExtractFacts(prompt)))
	found := false
	for _, h := range hits {
		if h.label == issue.MultiProcessNoMPI {
			found = true
		}
	}
	if !found {
		t.Error("multi-process job without MPI not flagged")
	}
}

func TestMatchSources(t *testing.T) {
	sources := []Source{
		{Key: "s1", Text: "small write requests hurt transfer size efficiency"},
		{Key: "s2", Text: "quantum chromodynamics on lattices"},
	}
	keys := matchSources(issue.SmallWrites, sources)
	if len(keys) != 1 || keys[0] != "s1" {
		t.Errorf("matchSources = %v", keys)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := &Report{
		Preamble: "Analysis of /bin/app.x.",
		Findings: []Finding{
			{Label: issue.SmallWrites, Evidence: "85% of writes under 1 MiB", Recommendation: "Aggregate writes.", Refs: []string{"yang2019smallwrite"}},
			{Label: issue.ServerImbalance, Evidence: "stripe count 1", Recommendation: "Raise stripe count."},
		},
		Notes: []string{"The application wrote 64 MiB."},
	}
	back := ParseReport(r.Format())
	if back.Preamble != r.Preamble {
		t.Errorf("preamble %q != %q", back.Preamble, r.Preamble)
	}
	if len(back.Findings) != 2 {
		t.Fatalf("findings = %d", len(back.Findings))
	}
	if back.Findings[0].Label != issue.SmallWrites || back.Findings[0].Refs[0] != "yang2019smallwrite" {
		t.Errorf("finding 0 = %+v", back.Findings[0])
	}
	if len(back.Notes) != 1 {
		t.Errorf("notes = %v", back.Notes)
	}
}

func TestMergeReportsDedupes(t *testing.T) {
	a := &Report{Findings: []Finding{{Label: issue.SmallWrites, Evidence: "e1", Refs: []string{"r1"}}}}
	b := &Report{Findings: []Finding{
		{Label: issue.SmallWrites, Evidence: "e2", Refs: []string{"r2"}},
		{Label: issue.RandomReads, Evidence: "e3"},
	}}
	m := MergeReports([]*Report{a, b})
	if len(m.Findings) != 2 {
		t.Fatalf("merged findings = %d, want 2", len(m.Findings))
	}
	f0 := m.Findings[0]
	if f0.Label != issue.SmallWrites || len(f0.Refs) != 2 {
		t.Errorf("merged finding = %+v", f0)
	}
	if f0.Evidence != "e1 e2" {
		t.Errorf("merged evidence = %q", f0.Evidence)
	}
}
