package llm

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A FactSet is SimLLM's working memory: everything it managed to extract
// from the (possibly truncated) prompt. Facts carry the relative position
// of their first occurrence so positional attention can be applied.
type FactSet struct {
	// Job header facts.
	NProcs  int
	RunTime float64
	UsesMPI bool
	Exe     string

	// Counters sums raw Darshan counters across all records in context.
	Counters map[string]float64
	// Files holds per-file counter sums (file path -> counter -> value).
	Files map[string]map[string]float64
	// SharedFiles marks files that appear with rank == -1 (shared records).
	SharedFiles map[string]bool
	// RankTimes accumulates per-rank I/O time from non-shared records
	// (rank >= 0), enabling imbalance detection on file-per-process jobs.
	RankTimes map[int]float64
	// Derived holds metrics from JSON summary fragments ("key": value).
	Derived map[string]float64
	// DerivedStr holds string-valued JSON fields (module, category, ...).
	DerivedStr map[string]string
	// Pos maps every counter/derived key to its first-occurrence relative
	// position in [0,1] within the prompt.
	Pos map[string]float64

	// Sources are retrieved references present in the prompt.
	Sources []Source
	// Candidates are ranking candidates ("=== CANDIDATE name ===").
	Candidates []Candidate
	// Truth is the ground-truth issue list from a ranking prompt.
	Truth []string
	// Criterion is the ranking criterion requested.
	Criterion string
	// Question is the user question of a chat prompt.
	Question string
	// PriorReport is assistant context (a previous diagnosis) for chat.
	PriorReport string
	// Fragment is the summary-fragment body for describe/filter tasks.
	Fragment string
	// Summaries are the diagnosis sections of a merge prompt.
	Summaries []string
}

// Source is one retrieved knowledge chunk visible in the prompt.
type Source struct {
	Key  string
	Text string
	Pos  float64
}

// Candidate is one tool output in a ranking prompt.
type Candidate struct {
	Name string
	Text string
}

var (
	counterLineRe = regexp.MustCompile(`^(POSIX|MPI-IO|STDIO|LUSTRE)\s+(-?\d+)\s+(\d+)\s+([A-Z][A-Z0-9_]+)\s+(-?[0-9.]+)\s+(\S+)\s+(\S+)\s+(\S+)$`)
	jsonKVRe      = regexp.MustCompile(`"([a-zA-Z0-9_]+)"\s*:\s*(-?[0-9][0-9.eE+-]*|"[^"]*")`)
	sourceRe      = regexp.MustCompile(`^\[SOURCE ([a-zA-Z0-9_-]+)\]\s*(.*)$`)
	candidateRe   = regexp.MustCompile(`^=== CANDIDATE (.+) ===$`)
	summaryRe     = regexp.MustCompile(`^--- SUMMARY (\d+) ---$`)
)

// ExtractFacts parses the prompt text into a FactSet.
func ExtractFacts(text string) *FactSet {
	f := &FactSet{
		Counters:    make(map[string]float64),
		Files:       make(map[string]map[string]float64),
		SharedFiles: make(map[string]bool),
		RankTimes:   make(map[int]float64),
		Derived:     make(map[string]float64),
		DerivedStr:  make(map[string]string),
		Pos:         make(map[string]float64),
	}
	lines := strings.Split(text, "\n")
	n := len(lines)
	if n == 0 {
		return f
	}

	var curCandidate *Candidate
	var curSummary *strings.Builder
	var inTruth bool
	var fragment strings.Builder
	var inFragment bool

	flushSummary := func() {
		if curSummary != nil {
			f.Summaries = append(f.Summaries, strings.TrimSpace(curSummary.String()))
			curSummary = nil
		}
	}
	flushCandidate := func() {
		if curCandidate != nil {
			curCandidate.Text = strings.TrimSpace(curCandidate.Text)
			f.Candidates = append(f.Candidates, *curCandidate)
			curCandidate = nil
		}
	}

	for i, raw := range lines {
		line := strings.TrimRight(raw, " \t")
		pos := float64(i) / float64(n)
		trimmed := strings.TrimSpace(line)

		// Section structure first.
		if m := candidateRe.FindStringSubmatch(trimmed); m != nil {
			flushCandidate()
			flushSummary()
			inTruth = false
			curCandidate = &Candidate{Name: m[1]}
			continue
		}
		if m := summaryRe.FindStringSubmatch(trimmed); m != nil {
			flushCandidate()
			flushSummary()
			curSummary = &strings.Builder{}
			continue
		}
		if trimmed == "=== END CANDIDATES ===" || trimmed == "--- END SUMMARIES ---" {
			flushCandidate()
			flushSummary()
			continue
		}
		if curCandidate != nil {
			curCandidate.Text += line + "\n"
			continue
		}
		if curSummary != nil {
			curSummary.WriteString(line + "\n")
			continue
		}

		switch {
		case strings.HasPrefix(trimmed, "GROUND TRUTH ISSUES:"):
			inTruth = true
			continue
		case inTruth && strings.HasPrefix(trimmed, "- "):
			f.Truth = append(f.Truth, strings.TrimPrefix(trimmed, "- "))
			continue
		case inTruth && trimmed != "":
			inTruth = false
		}

		switch {
		case strings.HasPrefix(trimmed, "CRITERION:"):
			f.Criterion = strings.ToLower(strings.TrimSpace(strings.TrimPrefix(trimmed, "CRITERION:")))
		case strings.HasPrefix(trimmed, "QUESTION:"):
			f.Question = strings.TrimSpace(strings.TrimPrefix(trimmed, "QUESTION:"))
		case strings.HasPrefix(trimmed, "FRAGMENT:"):
			inFragment = true
		case strings.HasPrefix(trimmed, "END FRAGMENT"):
			inFragment = false
		case strings.HasPrefix(trimmed, "PRIOR DIAGNOSIS:"):
			// Everything after this marker until a blank QUESTION line is
			// handled by the chat handler using the raw prompt; record it.
		}
		if inFragment && !strings.HasPrefix(trimmed, "FRAGMENT:") {
			fragment.WriteString(line + "\n")
		}

		if m := sourceRe.FindStringSubmatch(trimmed); m != nil {
			f.Sources = append(f.Sources, Source{Key: m[1], Text: m[2], Pos: pos})
			continue
		}

		// Job header lines (darshan-parser format).
		if strings.HasPrefix(trimmed, "# nprocs:") {
			if v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(trimmed, "# nprocs:"))); err == nil {
				f.NProcs = v
			}
			continue
		}
		if strings.HasPrefix(trimmed, "# run time:") {
			if v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(trimmed, "# run time:")), 64); err == nil {
				f.RunTime = v
			}
			continue
		}
		if strings.HasPrefix(trimmed, "# exe:") {
			f.Exe = strings.TrimSpace(strings.TrimPrefix(trimmed, "# exe:"))
			continue
		}
		if strings.HasPrefix(trimmed, "# metadata: mpi = 1") {
			f.UsesMPI = true
			continue
		}

		// Raw counter lines.
		if m := counterLineRe.FindStringSubmatch(trimmed); m != nil {
			counter := m[4]
			val, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				continue
			}
			file := m[6]
			rank, _ := strconv.Atoi(m[2])
			f.addCounter(counter, val, file, pos)
			// LUSTRE records always carry rank -1 (striping is per-file,
			// not per-rank); only data modules indicate shared access.
			if rank == -1 && m[1] != "LUSTRE" {
				f.SharedFiles[file] = true
			} else if counter == "POSIX_F_READ_TIME" || counter == "POSIX_F_WRITE_TIME" {
				f.RankTimes[rank] += val
			}
			continue
		}

		// JSON key/value pairs.
		for _, m := range jsonKVRe.FindAllStringSubmatch(line, -1) {
			key, raw := m[1], m[2]
			if strings.HasPrefix(raw, `"`) {
				f.DerivedStr[key] = strings.Trim(raw, `"`)
				continue
			}
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				if _, seen := f.Derived[key]; !seen {
					f.Derived[key] = v
					f.Pos[key] = pos
				}
			}
		}
	}
	flushCandidate()
	flushSummary()
	f.Fragment = strings.TrimSpace(fragment.String())

	// JSON job-context fields mirror the header facts when present.
	if f.NProcs == 0 {
		if v, ok := f.Derived["nprocs"]; ok {
			f.NProcs = int(v)
		}
	}
	if f.RunTime == 0 {
		if v, ok := f.Derived["runtime_s"]; ok {
			f.RunTime = v
		}
	}
	if v, ok := f.Derived["uses_mpi"]; ok && v > 0 {
		f.UsesMPI = true
	}
	return f
}

func (f *FactSet) addCounter(name string, val float64, file string, pos float64) {
	f.Counters[name] += val
	m, ok := f.Files[file]
	if !ok {
		m = make(map[string]float64)
		f.Files[file] = m
	}
	m[name] += val
	if _, seen := f.Pos[name]; !seen {
		f.Pos[name] = pos
	}
}

// sortedFiles returns the file keys in sorted order (stable iteration for
// float accumulation and tie-breaking).
func (f *FactSet) sortedFiles() []string {
	names := make([]string, 0, len(f.Files))
	for n := range f.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// C returns the summed raw counter value (0 when absent).
func (f *FactSet) C(name string) float64 { return f.Counters[name] }

// Has reports whether a counter or derived key is present.
func (f *FactSet) Has(key string) bool {
	if _, ok := f.Counters[key]; ok {
		return true
	}
	_, ok := f.Derived[key]
	return ok
}

// D returns a derived metric and whether it was present.
func (f *FactSet) D(key string) (float64, bool) {
	v, ok := f.Derived[key]
	return v, ok
}
