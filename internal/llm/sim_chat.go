package llm

import (
	"fmt"
	"regexp"
	"strings"

	"ioagent/internal/issue"
)

// chat implements the post-diagnosis interaction (paper Section VI-E /
// Fig. 5): the prompt carries the prior diagnosis as context plus a user
// QUESTION, and the model answers with explanations, tailored parameters,
// and concrete commands grounded in the diagnosis and its references.
func (s *SimLLM) chat(prompt string, f *FactSet, spec ModelSpec) string {
	rep := ParseReport(prompt)
	question := f.Question
	if question == "" {
		question = "How can I address the issues you found?"
	}
	target := matchFindingToQuestion(rep, question)
	if target == nil {
		if len(rep.Findings) == 0 {
			return "I did not identify any I/O performance issues in the prior diagnosis, so no corrective action is needed. If the application still feels slow, collect a new trace covering the slow phase and run the diagnosis again."
		}
		target = &rep.Findings[0]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "You are asking about the %q finding.\n\n", target.Label)
	if target.Evidence != "" {
		fmt.Fprintf(&b, "What the trace shows: %s.\n\n", strings.TrimSuffix(target.Evidence, "."))
	}
	b.WriteString("How to fix it:\n")
	for i, step := range remediationSteps(target, rep) {
		fmt.Fprintf(&b, "%d. %s\n", i+1, step)
	}
	if len(target.Refs) > 0 {
		fmt.Fprintf(&b, "\nThese recommendations follow %s.\n", strings.Join(target.Refs, ", "))
	}
	if spec.Verbosity >= 0.8 {
		b.WriteString("\nAfter applying the change, re-run the application with Darshan enabled and compare the new trace: the flagged counters should improve while total data volume stays the same.\n")
	}
	return b.String()
}

// matchFindingToQuestion picks the finding whose topic best overlaps the
// question's vocabulary.
func matchFindingToQuestion(rep *Report, question string) *Finding {
	q := strings.ToLower(question)
	best, bestScore := -1, 0
	for i, f := range rep.Findings {
		score := 0
		for _, t := range issue.Topics[f.Label] {
			if strings.Contains(q, t) {
				score += 2
			}
		}
		for _, w := range strings.Fields(strings.ToLower(string(f.Label))) {
			if len(w) > 3 && strings.Contains(q, w) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return nil
	}
	return &rep.Findings[best]
}

var (
	accessMibRe = regexp.MustCompile(`dominant access size is (\d+(?:\.\d+)?)\s*MiB`)
	mibRe       = regexp.MustCompile(`(\d+(?:\.\d+)?)\s*MiB`)
	kibRe       = regexp.MustCompile(`(\d+(?:\.\d+)?)\s*KiB`)
	ostsRe      = regexp.MustCompile(`(\d+)\s*OSTs`)
)

// remediationSteps synthesizes concrete, parameterized actions for the
// finding, pulling transfer sizes and OST counts out of the evidence text
// the way an assistant grounds its advice in the diagnosis.
func remediationSteps(f *Finding, rep *Report) []string {
	evidence := f.Evidence + " " + rep.Preamble + " " + strings.Join(rep.Notes, " ")
	stripeMB := extractSizeMB(evidence)
	osts := extractOSTs(evidence)

	switch f.Label {
	case issue.ServerImbalance:
		return []string{
			fmt.Sprintf("Raise the stripe count so large files span multiple storage targets: lfs setstripe -c %d <output-dir> (apply to the directory before creating files).", osts),
			fmt.Sprintf("Match the stripe size to your dominant transfer size: lfs setstripe -S %dM <output-dir>.", stripeMB),
			"Verify the new layout with lfs getstripe <file> after the next run.",
		}
	case issue.MisalignedWrites, issue.MisalignedReads:
		return []string{
			fmt.Sprintf("Set the stripe size equal to your transfer size so requests start on stripe boundaries: lfs setstripe -S %dM <output-dir>.", stripeMB),
			"Or pad per-rank regions so every rank's offset is a multiple of the stripe size.",
		}
	case issue.NoCollectiveWrite:
		return []string{
			"Switch shared-file writes to the collective call: replace MPI_File_write_at with MPI_File_write_at_all.",
			"If the application uses a high-level library, enable its collective mode (e.g. HDF5 H5Pset_dxpl_mpio with H5FD_MPIO_COLLECTIVE).",
			"Force collective buffering through hints when code changes are impossible: set romio_cb_write=enable in the MPI info object.",
		}
	case issue.NoCollectiveRead:
		return []string{
			"Switch shared-file reads to the collective call: replace MPI_File_read_at with MPI_File_read_at_all.",
			"Enable collective buffering for reads with the romio_cb_read=enable hint.",
		}
	case issue.SmallWrites:
		return []string{
			fmt.Sprintf("Aggregate writes in memory and flush in %d MiB blocks instead of writing each record individually.", stripeMB),
			"If the data is produced across ranks, use MPI-IO collective writes so the library aggregates for you.",
		}
	case issue.SmallReads:
		return []string{
			fmt.Sprintf("Read in %d MiB blocks and serve the application from that buffer instead of issuing each small read to the file system.", stripeMB),
			"Enable data sieving (romio_ds_read=enable) so the MPI-IO layer batches the small holes for you.",
		}
	case issue.HighMetadataLoad:
		return []string{
			"Aggregate the many small files into a container format (one HDF5 file with internal datasets) to eliminate per-file open/close costs.",
			"Cache stat results instead of re-stating files inside loops.",
		}
	case issue.RandomWrites, issue.RandomReads:
		return []string{
			"Sort the offsets and issue accesses in increasing order, or stage data in memory and perform one sequential pass.",
			"Collective MPI-IO also linearizes the access stream across ranks automatically.",
		}
	case issue.MultiProcessNoMPI:
		return []string{
			"Launch the processes under MPI and route file access through MPI-IO so the I/O layer can coordinate them.",
			"As a stopgap, assign each process a disjoint stripe-aligned region to avoid lock conflicts.",
		}
	case issue.RankImbalance:
		return []string{
			"Rebalance the data decomposition so every rank writes a comparable volume.",
			"Or funnel I/O through collective operations with evenly spread aggregators (cb_nodes hint).",
		}
	case issue.LowLevelLibRead, issue.LowLevelLibWrite:
		return []string{
			"Move bulk transfers from fread/fwrite to POSIX read/write or MPI-IO; keep STDIO only for small configuration and log files.",
		}
	case issue.RepetitiveReads:
		return []string{
			"Cache the re-read data in memory after the first pass, or stage it into a burst buffer / node-local SSD.",
		}
	case issue.SharedFileAccess:
		return []string{
			"Keep the shared file but add collective I/O so ranks coordinate, or split into a few subfiles if collective I/O is unavailable.",
		}
	}
	if rec := issue.Recommendations[f.Label]; rec != "" {
		return []string{rec}
	}
	return []string{"Collect a more detailed trace (e.g. Darshan DXT) to pin down the root cause."}
}

// extractSizeMB finds a transfer/access size mentioned in MiB or KiB in the
// evidence and rounds it to whole MiB (minimum 1, default 4).
func extractSizeMB(text string) int {
	if m := accessMibRe.FindStringSubmatch(text); m != nil {
		if v := atofSafe(m[1]); v >= 1 && v <= 64 {
			return int(v + 0.5)
		}
	}
	if m := mibRe.FindStringSubmatch(text); m != nil {
		if v := atofSafe(m[1]); v >= 1 && v <= 64 {
			return int(v + 0.5)
		}
	}
	if m := kibRe.FindStringSubmatch(text); m != nil {
		if v := atofSafe(m[1]); v >= 1024 {
			return int(v/1024 + 0.5)
		}
	}
	return 4
}

func extractOSTs(text string) int {
	if m := ostsRe.FindStringSubmatch(text); m != nil {
		if v := atofSafe(m[1]); v >= 2 {
			if v > 8 {
				return 8
			}
			return int(v)
		}
	}
	return 8
}

func atofSafe(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}
