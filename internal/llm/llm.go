package llm

import (
	"errors"
	"fmt"
)

// Role values for chat messages.
const (
	RoleSystem    = "system"
	RoleUser      = "user"
	RoleAssistant = "assistant"
)

// Message is one turn of a conversation.
type Message struct {
	Role    string
	Content string
}

// Request is a completion request.
type Request struct {
	Model    string
	Messages []Message
	// MaxTokens caps the completion length (0 = model default).
	MaxTokens int
	// Temperature is accepted for API fidelity; SimLLM is deterministic
	// and ignores it.
	Temperature float64
}

// Usage reports token consumption of one call.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt + completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Response is a completion result.
type Response struct {
	Model   string
	Content string
	Usage   Usage
	// Truncated reports whether the prompt exceeded the model's context
	// window and was cut (lost-in-the-middle).
	Truncated bool
	// CostUSD is the simulated API cost of this call.
	CostUSD float64
}

// Client is the interface every LLM-backed component depends on.
type Client interface {
	Complete(req Request) (Response, error)
}

// ErrUnknownModel is returned for models absent from the catalog.
var ErrUnknownModel = errors.New("llm: unknown model")

// Prompt builds a single-user-message request.
func Prompt(model, content string) Request {
	return Request{Model: model, Messages: []Message{{Role: RoleUser, Content: content}}}
}

// JoinPrompt renders the message list into one text block (SimLLM operates
// on the flattened conversation, as chat-completion APIs ultimately do).
func JoinPrompt(msgs []Message) string {
	var out string
	for i, m := range msgs {
		if i > 0 {
			out += "\n"
		}
		if m.Role == RoleSystem || m.Role == RoleAssistant {
			out += fmt.Sprintf("[%s]\n%s\n", m.Role, m.Content)
		} else {
			out += m.Content + "\n"
		}
	}
	return out
}
