// Package llm provides the language-model substrate behind every LLM-backed
// component in this repository (IOAgent, ION, the plain-query baseline, and
// the evaluation judge).
//
// The paper drives proprietary (gpt-4o, gpt-4o-mini) and open-source
// (Llama-3.1-70B, Llama-3-70B) models through vendor SDKs. This module is
// offline and dependency-free, so the package implements a deterministic
// simulated model, SimLLM, behind the same Client interface a real SDK
// would present. SimLLM does not pretend to be a general language model; it
// faithfully models the specific behaviors the paper's results depend on:
//
//   - finite context windows with lost-in-the-middle truncation (Section I,
//     challenge 1): prompts beyond the window keep their head and tail and
//     lose the middle;
//   - positional attention decay: facts surviving in the middle of a long
//     context are noticed with lower probability than facts near the edges;
//   - imperfect domain reasoning: a diagnostic rule base is applied with a
//     per-model reliability (capability), boosted when retrieved reference
//     material supporting the rule's topic is present in the prompt (the
//     RAG grounding effect, Section IV-B);
//   - popular-misconception priors (hallucination, Section III): without
//     grounding, models emit plausible but wrong claims, such as "the
//     default 1 MB stripe size with stripe count 1 is optimal";
//   - bounded merge capacity (Section IV-C / Fig. 6): merging two diagnosis
//     summaries is reliable for every model, while one-shot merging of many
//     summaries drops findings and references;
//   - judge biases (Section VI-B / Fig. 4): ranking outputs exhibit
//     positional and name biases that the paper's three prompt
//     augmentations are designed to cancel.
//
// All behavior is deterministic: randomness is seeded from a hash of
// (model, prompt), so identical requests yield identical responses.
//
// # Prompt conventions
//
// SimLLM routes requests by a "TASK: <name>" line (describe, diagnose,
// filter, merge, rank, chat); prompts without a marker are treated as
// free-form diagnosis, which is how the plain-LLM and ION baselines behave.
// Retrieved references appear as "[SOURCE <key>] <text>" lines. Ranking
// prompts carry "=== CANDIDATE <name> ===" sections and optionally a
// "GROUND TRUTH ISSUES:" list. These conventions stand in for the prompt
// engineering a production system performs.
package llm

import (
	"errors"
	"fmt"
)

// Role values for chat messages.
const (
	RoleSystem    = "system"
	RoleUser      = "user"
	RoleAssistant = "assistant"
)

// Message is one turn of a conversation.
type Message struct {
	Role    string
	Content string
}

// Request is a completion request.
type Request struct {
	Model    string
	Messages []Message
	// MaxTokens caps the completion length (0 = model default).
	MaxTokens int
	// Temperature is accepted for API fidelity; SimLLM is deterministic
	// and ignores it.
	Temperature float64
}

// Usage reports token consumption of one call.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt + completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Response is a completion result.
type Response struct {
	Model   string
	Content string
	Usage   Usage
	// Truncated reports whether the prompt exceeded the model's context
	// window and was cut (lost-in-the-middle).
	Truncated bool
	// CostUSD is the simulated API cost of this call.
	CostUSD float64
}

// Client is the interface every LLM-backed component depends on.
type Client interface {
	Complete(req Request) (Response, error)
}

// ErrUnknownModel is returned for models absent from the catalog.
var ErrUnknownModel = errors.New("llm: unknown model")

// Prompt builds a single-user-message request.
func Prompt(model, content string) Request {
	return Request{Model: model, Messages: []Message{{Role: RoleUser, Content: content}}}
}

// JoinPrompt renders the message list into one text block (SimLLM operates
// on the flattened conversation, as chat-completion APIs ultimately do).
func JoinPrompt(msgs []Message) string {
	var out string
	for i, m := range msgs {
		if i > 0 {
			out += "\n"
		}
		if m.Role == RoleSystem || m.Role == RoleAssistant {
			out += fmt.Sprintf("[%s]\n%s\n", m.Role, m.Content)
		} else {
			out += m.Content + "\n"
		}
	}
	return out
}
