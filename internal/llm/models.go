package llm

import "sort"

// ModelSpec describes one simulated model's behavioral envelope. Context
// windows are scaled down ~16x from the vendors' published figures, matching
// the scale factor between this repository's simulated traces and the
// multi-million-line production traces the paper works with; what matters
// is the *ratio* of trace size to window, which the scaling preserves.
type ModelSpec struct {
	Name string
	// ContextWindow is the prompt budget in tokens.
	ContextWindow int
	// Capability in (0,1] is the base probability of correctly applying a
	// diagnostic rule whose supporting evidence is in context.
	Capability float64
	// AttentionDecay in [0,1) is the maximum attention loss for facts in
	// the middle of the context (lost-in-the-middle strength).
	AttentionDecay float64
	// MisconceptionRate is the probability of emitting a popular-but-wrong
	// claim on an ungrounded topic.
	MisconceptionRate float64
	// MergeCapacity is the number of diagnosis summaries the model can
	// merge in one shot without degradation; pairwise merging (2) is
	// within every model's capacity by design.
	MergeCapacity int
	// Verbosity in (0,1] scales how much secondary detail the model adds
	// to diagnosis output (frontier models elaborate more).
	Verbosity float64
	// CostInPerMTok / CostOutPerMTok are USD per million tokens.
	CostInPerMTok  float64
	CostOutPerMTok float64
}

// Model names available in the catalog. The -sim suffix marks them as
// simulated stand-ins for the corresponding real models.
const (
	GPT4o     = "gpt-4o-sim"
	GPT4oMini = "gpt-4o-mini-sim"
	GPT4      = "gpt-4-sim"
	Llama31   = "llama-3.1-70b-instruct-sim"
	Llama3    = "llama-3-70b-instruct-sim"
	O1Preview = "o1-preview-sim"
)

var catalog = map[string]ModelSpec{
	GPT4o: {
		Name: GPT4o, ContextWindow: 8192,
		Capability: 0.93, AttentionDecay: 0.45, MisconceptionRate: 0.35,
		MergeCapacity: 4, Verbosity: 1.0,
		CostInPerMTok: 2.5, CostOutPerMTok: 10,
	},
	GPT4oMini: {
		Name: GPT4oMini, ContextWindow: 8192,
		Capability: 0.78, AttentionDecay: 0.55, MisconceptionRate: 0.45,
		MergeCapacity: 2, Verbosity: 0.6,
		CostInPerMTok: 0.15, CostOutPerMTok: 0.6,
	},
	GPT4: {
		Name: GPT4, ContextWindow: 2048,
		Capability: 0.55, AttentionDecay: 0.60, MisconceptionRate: 0.45,
		MergeCapacity: 2, Verbosity: 0.5,
		CostInPerMTok: 30, CostOutPerMTok: 60,
	},
	Llama31: {
		Name: Llama31, ContextWindow: 4096,
		Capability: 0.74, AttentionDecay: 0.55, MisconceptionRate: 0.45,
		MergeCapacity: 2, Verbosity: 0.55,
		CostInPerMTok: 0, CostOutPerMTok: 0, // self-hosted
	},
	Llama3: {
		Name: Llama3, ContextWindow: 2048,
		Capability: 0.62, AttentionDecay: 0.65, MisconceptionRate: 0.55,
		MergeCapacity: 1, Verbosity: 0.5,
		CostInPerMTok: 0, CostOutPerMTok: 0,
	},
	O1Preview: {
		// Strong reasoner with a context window too small for whole
		// traces (Section III notes it cannot fit the AMReX trace).
		Name: O1Preview, ContextWindow: 2048,
		Capability: 0.95, AttentionDecay: 0.35, MisconceptionRate: 0.25,
		MergeCapacity: 4, Verbosity: 0.9,
		CostInPerMTok: 15, CostOutPerMTok: 60,
	},
}

// LookupModel returns the spec for name.
func LookupModel(name string) (ModelSpec, bool) {
	s, ok := catalog[name]
	return s, ok
}

// Models lists the catalog names in sorted order.
func Models() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// cost computes the USD cost of one call.
func (s ModelSpec) cost(u Usage) float64 {
	return float64(u.PromptTokens)*s.CostInPerMTok/1e6 +
		float64(u.CompletionTokens)*s.CostOutPerMTok/1e6
}
