package llm

import (
	"errors"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if !IsTransient(Transient(base)) {
		t.Error("Transient(err) should be transient")
	}
	if IsTransient(base) {
		t.Error("bare error should not be transient")
	}
	if IsTransient(nil) {
		t.Error("nil should not be transient")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) should be nil")
	}
	// Wrapping preserves the cause for errors.Is.
	wrapped := Transient(ErrUnknownModel)
	if !errors.Is(wrapped, ErrUnknownModel) {
		t.Error("transient wrapper should unwrap to the cause")
	}
}

func TestFlakyFailsFirstOfEachWindow(t *testing.T) {
	c := Flaky(NewSim(), 3)
	var fails int
	for i := 0; i < 9; i++ {
		_, err := c.Complete(Prompt(GPT4o, "TASK: describe\nhello"))
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("flaky error should be transient, got %v", err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("9 calls at period 3: %d failures, want 3", fails)
	}
	// Period <= 1 disables injection entirely.
	if _, err := Flaky(NewSim(), 1).Complete(Prompt(GPT4o, "x")); err != nil {
		t.Errorf("Flaky(c, 1) should never fail: %v", err)
	}
}

func TestFlakyPermanentErrorsPassThrough(t *testing.T) {
	c := Flaky(NewSim(), 1000)
	c.Complete(Prompt(GPT4o, "x")) // call 1 absorbs the injected failure
	_, err := c.Complete(Prompt("no-such-model", "x"))
	if err == nil {
		t.Fatal("unknown model should error")
	}
	if IsTransient(err) {
		t.Error("unknown-model error must not be transient")
	}
}

func TestWithLatency(t *testing.T) {
	rtt := 20 * time.Millisecond
	c := WithLatency(NewSim(), rtt)
	start := time.Now()
	if _, err := c.Complete(Prompt(GPT4o, "x")); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < rtt {
		t.Errorf("call returned in %v, want >= %v", got, rtt)
	}
	// Responses are unchanged by the wrapper.
	a, _ := NewSim().Complete(Prompt(GPT4o, "TASK: describe\nhello"))
	b, _ := c.Complete(Prompt(GPT4o, "TASK: describe\nhello"))
	if a.Content != b.Content {
		t.Error("latency wrapper must not alter responses")
	}
	if WithLatency(NewSim(), 0) == nil {
		t.Error("WithLatency(c, 0) should return a usable client")
	}
}
