package llm

import (
	"strings"
	"testing"

	"ioagent/internal/issue"
)

func chatPrompt(rep *Report, question string) string {
	return "TASK: chat\nPRIOR DIAGNOSIS:\n" + rep.Format() + "\nQUESTION: " + question + "\n"
}

func singleFinding(l issue.Label, evidence string) *Report {
	return &Report{Findings: []Finding{{
		Label: l, Evidence: evidence,
		Recommendation: issue.Recommendations[l],
		Refs:           []string{"carns2011darshan"},
	}}}
}

// TestChatAnswersPerLabel checks every issue label yields a concrete,
// on-topic remediation answer.
func TestChatAnswersPerLabel(t *testing.T) {
	wantSnippet := map[issue.Label]string{
		issue.HighMetadataLoad:  "container format",
		issue.MisalignedReads:   "lfs setstripe -S",
		issue.MisalignedWrites:  "lfs setstripe -S",
		issue.RandomReads:       "Sort the offsets",
		issue.RandomWrites:      "Sort the offsets",
		issue.SharedFileAccess:  "collective",
		issue.SmallReads:        "data sieving",
		issue.SmallWrites:       "Aggregate writes",
		issue.RepetitiveReads:   "Cache",
		issue.ServerImbalance:   "lfs setstripe -c",
		issue.RankImbalance:     "Rebalance",
		issue.MultiProcessNoMPI: "MPI",
		issue.NoCollectiveRead:  "MPI_File_read_at_all",
		issue.NoCollectiveWrite: "MPI_File_write_at_all",
		issue.LowLevelLibRead:   "fread",
		issue.LowLevelLibWrite:  "fread",
	}
	for _, l := range issue.All {
		rep := singleFinding(l, "strong evidence of "+string(l))
		resp := complete(t, GPT4o, chatPrompt(rep, "How do I fix the "+string(l)+" problem?"))
		if !strings.Contains(resp.Content, string(l)) {
			t.Errorf("%s: answer does not name the finding:\n%s", l, resp.Content)
		}
		if !strings.Contains(resp.Content, wantSnippet[l]) {
			t.Errorf("%s: answer missing %q:\n%s", l, wantSnippet[l], resp.Content)
		}
		if !strings.Contains(resp.Content, "carns2011darshan") {
			t.Errorf("%s: answer does not cite the finding's references", l)
		}
	}
}

func TestChatNoFindings(t *testing.T) {
	rep := &Report{Preamble: "All clean."}
	resp := complete(t, GPT4o, chatPrompt(rep, "What should I fix?"))
	if !strings.Contains(resp.Content, "did not identify any") {
		t.Errorf("empty diagnosis should yield a no-action answer:\n%s", resp.Content)
	}
}

func TestChatPicksRelevantFinding(t *testing.T) {
	rep := &Report{Findings: []Finding{
		{Label: issue.SmallWrites, Evidence: "small writes"},
		{Label: issue.HighMetadataLoad, Evidence: "metadata storms from stat calls"},
	}}
	resp := complete(t, GPT4o, chatPrompt(rep, "Why is my metadata and stat load so high?"))
	if !strings.Contains(resp.Content, "High Metadata Load") {
		t.Errorf("question about metadata should select the metadata finding:\n%s", resp.Content)
	}
}

func TestExtractSizeMB(t *testing.T) {
	cases := []struct {
		text string
		want int
	}{
		{"the dominant access size is 4 MiB per request", 4},
		{"the dominant access size is 16 MiB per request while 2 MiB elsewhere", 16},
		{"transfers of 2.0 MiB observed", 2},
		{"a 2048 KiB transfer", 2},
		{"no sizes here", 4},                              // default
		{"512 MiB are written without collective I/O", 4}, // too big to be a transfer size
	}
	for _, c := range cases {
		if got := extractSizeMB(c.text); got != c.want {
			t.Errorf("extractSizeMB(%q) = %d, want %d", c.text, got, c.want)
		}
	}
}

func TestExtractOSTs(t *testing.T) {
	if got := extractOSTs("while 16 OSTs are available"); got != 8 {
		t.Errorf("extractOSTs capped = %d, want 8", got)
	}
	if got := extractOSTs("while 4 OSTs are available"); got != 4 {
		t.Errorf("extractOSTs = %d, want 4", got)
	}
	if got := extractOSTs("no mention"); got != 8 {
		t.Errorf("extractOSTs default = %d, want 8", got)
	}
}

func TestVerbosityAffectsChat(t *testing.T) {
	rep := singleFinding(issue.SmallWrites, "small writes dominate")
	frontier := complete(t, GPT4o, chatPrompt(rep, "How do I fix small writes?"))
	open := complete(t, Llama31, chatPrompt(rep, "How do I fix small writes?"))
	if !strings.Contains(frontier.Content, "re-run the application with Darshan") {
		t.Error("verbose model should append the verification coda")
	}
	if strings.Contains(open.Content, "re-run the application with Darshan") {
		t.Error("terse model should omit the verification coda")
	}
}
