package llm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ioagent/internal/issue"
)

// randomReport builds a structurally valid report from fuzz input.
func randomReport(rng *rand.Rand) *Report {
	words := []string{"the", "application", "writes", "small", "requests",
		"across", "ranks", "with", "42", "operations", "and", "97%", "ratio"}
	sentence := func(n int) string {
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
	rep := &Report{Preamble: sentence(4+rng.Intn(6)) + "."}
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		f := Finding{
			Label:    issue.All[rng.Intn(len(issue.All))],
			Evidence: sentence(3 + rng.Intn(12)),
		}
		if rng.Intn(2) == 0 {
			f.Recommendation = sentence(4+rng.Intn(8)) + "."
		}
		for j := 0; j < rng.Intn(3); j++ {
			f.Refs = append(f.Refs, "ref"+string(rune('a'+j)))
		}
		rep.Findings = append(rep.Findings, f)
	}
	for i := 0; i < rng.Intn(3); i++ {
		rep.Notes = append(rep.Notes, sentence(5+rng.Intn(6))+".")
	}
	return rep
}

// Property: Format followed by ParseReport preserves labels, evidence,
// recommendations, references, and notes.
func TestReportRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rep := randomReport(rng)
		back := ParseReport(rep.Format())
		if len(back.Findings) != len(rep.Findings) || len(back.Notes) != len(rep.Notes) {
			return false
		}
		for i := range rep.Findings {
			a, b := rep.Findings[i], back.Findings[i]
			if a.Label != b.Label || a.Evidence != b.Evidence || a.Recommendation != b.Recommendation {
				return false
			}
			if len(a.Refs) != len(b.Refs) {
				return false
			}
			for j := range a.Refs {
				if a.Refs[j] != b.Refs[j] {
					return false
				}
			}
		}
		for i := range rep.Notes {
			if rep.Notes[i] != back.Notes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: MergeReports is idempotent on a single report and never loses
// labels when merging a report with itself.
func TestMergeIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rep := randomReport(rng)
		merged := MergeReports([]*Report{rep, rep})
		want := rep.Labels()
		got := merged.Labels()
		if len(want) != len(got) {
			return false
		}
		for l := range want {
			if !got[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ClaimedLabels of a formatted report equals the report's label
// set restricted to the canonical vocabulary.
func TestClaimedLabelsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rep := randomReport(rng)
		claimed := ClaimedLabels(rep.Format())
		for l := range rep.Labels() {
			if !claimed[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAttentionFillThreshold: prompts under 20% of the window suffer no
// attention loss regardless of model.
func TestAttentionFillThreshold(t *testing.T) {
	spec, _ := LookupModel(Llama3) // strongest decay
	sim := NewSim()
	short := "# nprocs: 4\nPOSIX\t0\t1\tPOSIX_WRITES\t100\t/scratch/a\t/scratch\tlustre\n"
	f := ExtractFacts(short)
	rng := rand.New(rand.NewSource(1))
	sim.applyAttention(f, spec, CountTokens(short), rng)
	if f.C("POSIX_WRITES") != 100 {
		t.Error("short prompt must not lose facts to attention decay")
	}
}

// TestTruncateMiddleProperty: output token count never exceeds the budget
// by more than one line's worth, and head/tail lines survive.
func TestTruncateMiddleProperty(t *testing.T) {
	f := func(nLines uint8, budget uint16) bool {
		n := int(nLines)%200 + 10
		max := int(budget)%2000 + 50
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("line with several tokens inside it\n")
		}
		out, _ := TruncateMiddle(b.String(), max)
		return CountTokens(out) <= max+16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
