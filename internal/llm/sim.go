package llm

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"ioagent/internal/embed"
	"ioagent/internal/issue"
)

// SimLLM is the deterministic simulated language model. See the package
// documentation for the behavioral model. The zero value is not usable;
// construct with NewSim.
type SimLLM struct {
	// ExtraSeed perturbs all stochastic behavior; the default of 0 gives
	// the canonical reproduction runs.
	ExtraSeed int64
}

// NewSim returns a simulated model client serving every catalog model.
func NewSim() *SimLLM { return &SimLLM{} }

var _ Client = (*SimLLM)(nil)

// Complete implements Client.
func (s *SimLLM) Complete(req Request) (Response, error) {
	spec, ok := LookupModel(req.Model)
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownModel, req.Model)
	}
	prompt := JoinPrompt(req.Messages)
	promptTokens := CountTokens(prompt)
	windowed, truncated := TruncateMiddle(prompt, spec.ContextWindow)

	rng := rand.New(rand.NewSource(s.seed(spec.Name, prompt)))
	facts := ExtractFacts(windowed)
	s.applyAttention(facts, spec, promptTokens, rng)

	var content string
	task, explicit := detectTask(windowed)
	switch task {
	case "describe":
		content = s.describe(facts, spec)
	case "filter":
		content = s.filter(facts, spec, rng)
	case "merge":
		content = s.merge(facts, spec, rng)
	case "rank":
		content = s.rank(windowed, facts, spec, rng)
	case "chat":
		content = s.chat(windowed, facts, spec)
	default:
		// Structured diagnosis for pipeline prompts ("TASK: diagnose");
		// free-form prose for plain queries (ION, direct model use).
		content = s.diagnose(facts, spec, truncated, !explicit, rng)
	}

	if req.MaxTokens > 0 {
		if t, cut := truncateTail(content, req.MaxTokens); cut {
			content = t
		}
	}
	usage := Usage{PromptTokens: promptTokens, CompletionTokens: CountTokens(content)}
	return Response{
		Model:     spec.Name,
		Content:   content,
		Usage:     usage,
		Truncated: truncated,
		CostUSD:   spec.cost(usage),
	}, nil
}

func (s *SimLLM) seed(model, prompt string) int64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(prompt))
	return int64(h.Sum64()) ^ s.ExtraSeed
}

var taskRe = regexp.MustCompile(`(?m)^TASK:\s*([a-z]+)\s*$`)

func detectTask(prompt string) (task string, explicit bool) {
	if m := taskRe.FindStringSubmatch(prompt); m != nil {
		return m[1], true
	}
	return "diagnose", false
}

// applyAttention drops facts according to the lost-in-the-middle attention
// curve. Short prompts (relative to the window) suffer no loss — this is
// exactly why IOAgent's small per-fragment prompts are reliable.
func (s *SimLLM) applyAttention(f *FactSet, spec ModelSpec, promptTokens int, rng *rand.Rand) {
	fill := float64(promptTokens) / float64(spec.ContextWindow)
	strength := (fill - 0.20) / 0.80
	if strength < 0 {
		strength = 0
	}
	if strength > 1 {
		strength = 1
	}
	decay := spec.AttentionDecay * strength
	if decay == 0 {
		return
	}
	drop := func(key string) bool {
		pos := f.Pos[key]
		bell := math.Sin(math.Pi * pos)
		bell *= bell // 0 at the edges, 1 in the middle
		return rng.Float64() < decay*bell
	}
	// Iterate keys in sorted order: each key must consume the same rng
	// draw on every run, or responses would vary with map layout.
	for _, key := range sortedFactKeys(f.Counters) {
		if drop(key) {
			delete(f.Counters, key)
			for _, fc := range f.Files {
				delete(fc, key)
			}
		}
	}
	for _, key := range sortedFactKeys(f.Derived) {
		if drop(key) {
			delete(f.Derived, key)
		}
	}
}

func sortedFactKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// categoryLabels scopes fragment diagnosis: a summary fragment about one
// Table I category yields findings of that category's issue family only
// (the model answers the question it was asked). Labels map to the
// fragments whose data actually evidences them.
var categoryLabels = map[string][]issue.Label{
	"io_size":        {issue.SmallReads, issue.SmallWrites, issue.LowLevelLibRead, issue.LowLevelLibWrite},
	"request_count":  {issue.NoCollectiveRead, issue.NoCollectiveWrite, issue.MultiProcessNoMPI},
	"file_metadata":  {issue.HighMetadataLoad},
	"rank":           {issue.RankImbalance, issue.SharedFileAccess, issue.MultiProcessNoMPI, issue.NoCollectiveRead, issue.NoCollectiveWrite},
	"alignment":      {issue.MisalignedReads, issue.MisalignedWrites},
	"order":          {issue.RandomReads, issue.RandomWrites, issue.RepetitiveReads},
	"mount":          {},
	"stripe_setting": {issue.ServerImbalance},
	"server_usage":   {issue.ServerImbalance},
}

// crossModule marks issues whose detection requires correlating multiple
// parts of the trace (Section I: "many I/O issues can only be identified by
// correlating multiple parts of the I/O trace"). Under a truncated long
// context these correlations degrade sharply.
var crossModule = map[issue.Label]bool{
	issue.NoCollectiveRead:  true,
	issue.NoCollectiveWrite: true,
	issue.MultiProcessNoMPI: true,
	issue.LowLevelLibRead:   true,
	issue.LowLevelLibWrite:  true,
	issue.ServerImbalance:   true,
	issue.RankImbalance:     true,
}

// diagnose runs the rule base over the retained facts and renders a report,
// degraded by capability, truncation, grounding, and misconceptions. When
// prose is true the output is free-form paragraphs (how a plain model
// answers a direct query); otherwise the canonical report layout is used.
func (s *SimLLM) diagnose(f *FactSet, spec ModelSpec, truncated, prose bool, rng *rand.Rand) string {
	v := NewView(f)
	hits := runRules(v)

	// Fragment prompts are scoped to one summary category; answer within it.
	if cat := f.DerivedStr["category"]; cat != "" {
		if allowed, ok := categoryLabels[cat]; ok {
			set := issue.NewSet(allowed...)
			kept := hits[:0]
			for _, h := range hits {
				if set[h.label] {
					kept = append(kept, h)
				}
			}
			hits = kept
		}
	}

	// Raw-counter prompts (no prepared summary metrics) are harder to
	// reason over than IOAgent's focused fragments; reliability drops.
	rawMode := len(f.Derived) == 0 && len(f.Counters) > 0

	// Simple cases are within every model's reach: effective capability
	// rises toward 1 as the number of concurrent concerns shrinks (this is
	// why the open model matches the frontier model on Simple-Bench).
	effCap := spec.Capability + (1-spec.Capability)*math.Exp(-float64(len(hits)-1)/3.0)

	rep := &Report{Preamble: diagnosisPreamble(f)}
	dropped := make(map[issue.Label]bool)
	for _, h := range hits {
		refs := matchSources(h.label, f.Sources)
		rel := effCap
		if len(refs) > 0 {
			rel += 0.15
		}
		if rawMode {
			rel *= 0.92
		}
		if truncated && crossModule[h.label] {
			rel *= 0.45
		}
		if rel > 0.995 {
			rel = 0.995
		}
		if rng.Float64() >= rel {
			dropped[h.label] = true
			continue
		}
		rec := issue.Recommendations[h.label]
		if spec.Verbosity < 0.7 {
			rec = firstSentence(rec)
		}
		rep.Findings = append(rep.Findings, Finding{
			Label: h.label, Evidence: h.Evidence(spec), Recommendation: rec, Refs: refs,
		})
	}

	s.applyMisconceptions(rep, v, spec, rng)

	// Ungrounded raw-trace analysis also hallucinates plausible issues the
	// data does not support (the false-positive half of Section III).
	if rawMode && len(f.Sources) == 0 {
		phantoms := []issue.Label{
			issue.MisalignedWrites, issue.HighMetadataLoad,
			issue.RandomReads, issue.SmallReads, issue.RankImbalance,
		}
		for draw := 0; draw < 2; draw++ {
			if rng.Float64() >= spec.MisconceptionRate {
				continue
			}
			claimed := rep.Labels()
			pick := phantoms[rng.Intn(len(phantoms))]
			if !claimed[pick] {
				rep.Findings = append(rep.Findings, Finding{
					Label:          pick,
					Evidence:       "several aspects of the access pattern suggest this may be degrading performance",
					Recommendation: issue.Recommendations[pick],
				})
			}
		}
	}

	if spec.Verbosity >= 0.8 {
		// Verbose models add context observations, scaled loosely to the
		// amount of real content (frontier models adapt to the material).
		obs := observations(f)
		if cap := len(rep.Findings) + 2; len(obs) > cap {
			obs = obs[:cap]
		}
		rep.Notes = append(rep.Notes, obs...)
	}
	if prose {
		return renderProse(rep)
	}
	return rep.Format()
}

// renderProse flattens a report into flowing paragraphs: the style a plain
// model produces for a direct query — informative but unstructured, which
// is exactly what costs the naive baselines on interpretability.
func renderProse(rep *Report) string {
	var b strings.Builder
	b.WriteString(rep.Preamble)
	b.WriteString(" Based on the trace contents, here is my assessment of the application's I/O behavior.\n\n")
	if len(rep.Findings) == 0 {
		b.WriteString("I did not find clear evidence of I/O performance problems in the visible portion of the trace.\n")
	}
	for i, fd := range rep.Findings {
		fmt.Fprintf(&b, "%s, the trace suggests %s: %s.", ordinal(i), strings.ToLower(string(fd.Label)), fd.Evidence)
		if fd.Recommendation != "" {
			fmt.Fprintf(&b, " %s", fd.Recommendation)
		}
		b.WriteString("\n\n")
	}
	// A narrative answer summarizes context briefly rather than
	// enumerating every observation.
	for i, n := range rep.Notes {
		if i == 3 {
			break
		}
		b.WriteString(n + " ")
	}
	b.WriteString("\n")
	return b.String()
}

func ordinal(i int) string {
	switch i {
	case 0:
		return "First"
	case 1:
		return "Second"
	case 2:
		return "Third"
	case 3:
		return "Next"
	default:
		return "Additionally"
	}
}

// Evidence renders the rule evidence, with low-verbosity models keeping
// only the leading clause.
func (h ruleHit) Evidence(spec ModelSpec) string {
	if spec.Verbosity < 0.7 {
		if i := strings.IndexAny(h.evidence, ";"); i > 0 {
			return h.evidence[:i]
		}
	}
	return h.evidence
}

// applyMisconceptions injects the popular-but-wrong claims of Section III
// when the relevant topic is not grounded by retrieved references.
func (s *SimLLM) applyMisconceptions(rep *Report, v *View, spec ModelSpec, rng *rand.Rand) {
	grounded := func(l issue.Label) bool {
		return len(matchSources(l, v.f.Sources)) > 0
	}

	// (a) "Default striping is optimal": suppresses a correct
	// Server Load Imbalance finding and asserts the opposite.
	if _, _, width, size, _, ok := v.StripePicture(); ok &&
		width <= 1 && size >= 512<<10 && size <= 2<<20 &&
		!grounded(issue.ServerImbalance) &&
		rng.Float64() < spec.MisconceptionRate {
		kept := rep.Findings[:0]
		for _, f := range rep.Findings {
			if f.Label != issue.ServerImbalance {
				kept = append(kept, f)
			}
		}
		rep.Findings = kept
		rep.Notes = append(rep.Notes,
			"The file stripe size of 1 MiB matches the common Lustre stripe size; this is optimal for minimizing the number of I/O requests on Lustre, so the striping configuration looks good.")
	}

	// (b) Inconsistent small-write claim: flags small writes the data does
	// not support (a false positive that contradicts the histogram).
	if !rep.Labels()[issue.SmallWrites] && !grounded(issue.SmallWrites) {
		if frac, ok := v.SmallWriteFraction(); ok && frac < smallFracThreshold && frac >= 0 {
			if w, okW := v.writes(); okW && w > 0 && rng.Float64() < spec.MisconceptionRate*0.7 {
				rep.Findings = append(rep.Findings, Finding{
					Label:          issue.SmallWrites,
					Evidence:       "some write operations appear to use small transfer sizes, which could degrade performance",
					Recommendation: "Consider aggregating writes into larger requests.",
				})
			}
		}
	}

	// (c) Generic ungrounded advice.
	if len(v.f.Sources) == 0 && rng.Float64() < spec.MisconceptionRate*0.5 {
		rep.Notes = append(rep.Notes,
			"Consider using a burst buffer or increasing the number of I/O nodes to accelerate I/O.")
	}
}

func diagnosisPreamble(f *FactSet) string {
	var parts []string
	if f.Exe != "" {
		parts = append(parts, fmt.Sprintf("Analysis of %s.", f.Exe))
	}
	if f.NProcs > 0 {
		parts = append(parts, fmt.Sprintf("The job ran with %d process(es).", f.NProcs))
	}
	if f.RunTime > 0 {
		parts = append(parts, fmt.Sprintf("Total runtime was %.0f seconds.", f.RunTime))
	}
	if len(parts) == 0 {
		return "Analysis of the provided I/O activity."
	}
	return strings.Join(parts, " ")
}

func observations(f *FactSet) []string {
	var notes []string
	v := NewView(f)
	if r, w, ok := v.TotalBytes(); ok {
		notes = append(notes, fmt.Sprintf("The application read %.1f MiB and wrote %.1f MiB in total over the course of the run.", r/(1<<20), w/(1<<20)))
	}
	if r, ok := v.reads(); ok {
		w, _ := v.writes()
		notes = append(notes, fmt.Sprintf("In total the trace records %.0f read operations and %.0f write operations across all ranks and files.", r, w))
	}
	if cr, cw, ir, iw, ok := v.Collectives(); ok {
		notes = append(notes, fmt.Sprintf("MPI-IO activity breaks down as %.0f collective and %.0f independent reads, plus %.0f collective and %.0f independent writes.", cr, ir, cw, iw))
	}
	if frac, ok := v.MetaTimeFraction(); ok {
		notes = append(notes, fmt.Sprintf("Metadata operations such as open and stat account for %.0f%% of the observed I/O time.", frac*100))
	}
	if seqW, ok := v.SeqWriteFraction(); ok {
		notes = append(notes, fmt.Sprintf("%.0f%% of write operations land at non-decreasing file offsets (sequential access).", seqW*100))
	}
	if seqR, ok := v.SeqReadFraction(); ok {
		notes = append(notes, fmt.Sprintf("%.0f%% of read operations land at non-decreasing file offsets (sequential access).", seqR*100))
	}
	if _, cov, width, size, osts, ok := v.StripePicture(); ok && osts > 0 {
		if width > 0 {
			notes = append(notes, fmt.Sprintf("On the Lustre mount the dominant layout uses a stripe count of %.0f with a %.0f KiB stripe size.", width, size/1024))
		}
		if cov > 0 {
			notes = append(notes, fmt.Sprintf("The job's files touch %.0f%% of the %.0f available OSTs.", cov*100, osts))
		}
	}
	if shared, ok := v.SharedDataFiles(); ok && shared > 0 {
		notes = append(notes, fmt.Sprintf("%.0f of the data files are accessed concurrently by multiple ranks.", shared))
	}
	return notes
}

func firstSentence(s string) string {
	if i := strings.Index(s, ". "); i > 0 {
		return s[:i+1]
	}
	return s
}

// describe converts a JSON summary fragment into the natural-language
// rendition used for embedding-based retrieval (paper Fig. 3).
func (s *SimLLM) describe(f *FactSet, spec ModelSpec) string {
	var b strings.Builder
	module := f.DerivedStr["module"]
	category := f.DerivedStr["category"]
	if module != "" || category != "" {
		fmt.Fprintf(&b, "This summary describes the %s information captured by the %s module.\n",
			strings.ReplaceAll(category, "_", " "), module)
	}
	if f.NProcs > 0 && f.RunTime > 0 {
		fmt.Fprintf(&b, "The application ran with %d processes for %.0f seconds.\n", f.NProcs, f.RunTime)
	}

	keys := make([]string, 0, len(f.Derived))
	for k := range f.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		val := f.Derived[k]
		if sentence := describeKey(k, val); sentence != "" {
			b.WriteString(sentence + "\n")
		}
	}
	return b.String()
}

// histBucketText maps histogram key suffixes to human phrasing.
var histBucketText = map[string]string{
	"0_100": "0 bytes to 100 bytes", "100_1K": "100 bytes to 1 KB",
	"1K_10K": "1 KB to 10 KB", "10K_100K": "10 KB to 100 KB",
	"100K_1M": "100 KB to 1 MB", "1M_4M": "1 MB to 4 MB",
	"4M_10M": "4 MB to 10 MB", "10M_100M": "10 MB to 100 MB",
	"100M_1G": "100 MB to 1 GB", "1G_PLUS": "over 1 GB",
}

func describeKey(key string, val float64) string {
	for suffix, text := range histBucketText {
		if strings.HasSuffix(key, suffix) && strings.Contains(key, "hist") {
			if val == 0 {
				return ""
			}
			op := "read"
			if strings.Contains(key, "write") {
				op = "write"
			}
			return fmt.Sprintf("The value of %.2f in the %s bin indicates that %.0f%% of the %s operations fall within the %s range.",
				val, text, val*100, op, text)
		}
	}
	switch key {
	case KeyBytesRead:
		return fmt.Sprintf("The application read a total of %.1f MiB of data.", val/(1<<20))
	case KeyBytesWrit:
		return fmt.Sprintf("The application wrote a total of %.1f MiB of data.", val/(1<<20))
	case KeySmallWriteFrac:
		return fmt.Sprintf("%.0f%% of write requests transfer fewer than 1 MB, which classifies them as small writes.", val*100)
	case KeySmallReadFrac:
		return fmt.Sprintf("%.0f%% of read requests transfer fewer than 1 MB, which classifies them as small reads.", val*100)
	case KeySeqWriteFrac:
		return fmt.Sprintf("%.0f%% of write operations are sequential; the remainder occur at out-of-order offsets suggesting a random write pattern.", val*100)
	case KeySeqReadFrac:
		return fmt.Sprintf("%.0f%% of read operations are sequential; the remainder occur at out-of-order offsets suggesting a random read pattern.", val*100)
	case KeyUnalignedWrite:
		return fmt.Sprintf("%.0f%% of write requests are not aligned with the file system stripe boundary.", val*100)
	case KeyUnalignedRead:
		return fmt.Sprintf("%.0f%% of read requests are not aligned with the file system stripe boundary.", val*100)
	case KeyMetaTimeFrac:
		return fmt.Sprintf("Metadata operations such as open and stat account for %.0f%% of the observed I/O time.", val*100)
	case KeyMetaOpsPerProc:
		return fmt.Sprintf("Each process performed about %.0f metadata operations (opens and stats).", val)
	case KeySharedFiles:
		return fmt.Sprintf("%.0f file(s) are shared: accessed concurrently by multiple MPI ranks.", val)
	case KeyCollWrites:
		return fmt.Sprintf("The application issued %.0f collective MPI-IO write operations.", val)
	case KeyCollReads:
		return fmt.Sprintf("The application issued %.0f collective MPI-IO read operations.", val)
	case KeyIndepWrites:
		return fmt.Sprintf("The application issued %.0f independent (non-collective) MPI-IO write operations.", val)
	case KeyIndepReads:
		return fmt.Sprintf("The application issued %.0f independent (non-collective) MPI-IO read operations.", val)
	case KeyStdioWriteByt:
		return fmt.Sprintf("%.1f MiB were written through the buffered STDIO library layer.", val/(1<<20))
	case KeyStdioReadByt:
		return fmt.Sprintf("%.1f MiB were read through the buffered STDIO library layer.", val/(1<<20))
	case KeyRereadFactor:
		return fmt.Sprintf("The most re-read file was read %.1f times over, indicating repetitive data access.", val)
	case KeyRankSlowRatio:
		return fmt.Sprintf("The slowest rank spent %.1fx the mean rank I/O time, a sign of rank load imbalance.", val)
	case KeyRankByteRatio:
		return fmt.Sprintf("The slowest rank moved %.1fx the bytes of the fastest rank.", val)
	case KeyStripeWidth:
		return fmt.Sprintf("Files on the Lustre mount use a stripe count (width) of %.0f.", val)
	case KeyStripeSize:
		return fmt.Sprintf("Files on the Lustre mount use a stripe size of %.0f KiB.", val/1024)
	case KeyNumOSTs:
		return fmt.Sprintf("The Lustre file system exposes %.0f object storage targets (OSTs).", val)
	case KeyOSTCoverage:
		return fmt.Sprintf("The job's files are striped over %.0f%% of the available storage targets.", val*100)
	case KeyWideFiles:
		if val == 0 {
			return ""
		}
		return fmt.Sprintf("%.0f large file(s) are confined to a single object storage target by a stripe count of 1.", val)
	case KeyLargestFile:
		return fmt.Sprintf("The largest file spans %.1f MiB.", val/(1<<20))
	case KeyAccessSize:
		return fmt.Sprintf("The dominant access size is %.0f KiB per request.", val/1024)
	case KeyWrites:
		return fmt.Sprintf("The application issued %.0f write operations in total.", val)
	case KeyReads:
		return fmt.Sprintf("The application issued %.0f read operations in total.", val)
	case KeyPosixShr:
		return fmt.Sprintf("%.0f%% of all bytes moved through the POSIX interface.", val*100)
	case KeyMpiioShr:
		return fmt.Sprintf("%.0f%% of all bytes moved through the MPI-IO interface.", val*100)
	case KeyStdioShr:
		return fmt.Sprintf("%.0f%% of all bytes moved through the STDIO interface.", val*100)
	}
	return ""
}

// filter implements the self-reflection relevance check: given a summary
// fragment and one retrieved source, answer whether the source is relevant.
func (s *SimLLM) filter(f *FactSet, spec ModelSpec, rng *rand.Rand) string {
	if len(f.Sources) == 0 {
		return "NO: no source provided"
	}
	src := f.Sources[0]
	sim := embed.Cosine(embed.Embed(f.Fragment), embed.Embed(src.Text))
	relevant := sim > 0.15
	// Imperfect judgment near the boundary for weaker models.
	if math.Abs(sim-0.15) < 0.04 && rng.Float64() < (1-spec.Capability)*0.5 {
		relevant = !relevant
	}
	if relevant {
		return fmt.Sprintf("YES: the source addresses the same behavior discussed in the fragment (similarity %.2f)", sim)
	}
	return fmt.Sprintf("NO: the source discusses a different aspect of I/O than the fragment (similarity %.2f)", sim)
}

// merge combines diagnosis summaries. Pairwise merges (within the model's
// merge capacity) are essentially lossless; one-shot merges of many
// summaries drop findings and references (paper Section IV-C / Fig. 6).
func (s *SimLLM) merge(f *FactSet, spec ModelSpec, rng *rand.Rand) string {
	n := len(f.Summaries)
	if n == 0 {
		return (&Report{Preamble: "Nothing to merge."}).Format()
	}
	reports := make([]*Report, n)
	for i, text := range f.Summaries {
		reports[i] = ParseReport(text)
	}

	pFind, pRef := 0.995, 0.99
	if n > spec.MergeCapacity && n > 2 {
		// One-shot merging beyond the model's capacity loses content
		// rapidly (Fig. 6).
		over := float64(n - spec.MergeCapacity)
		pFind = (0.95 - 0.15*over) * (0.5 + 0.5*spec.Capability)
		if pFind < 0.20 {
			pFind = 0.20
		}
		pRef = pFind * 0.65
	} else {
		// Pairwise merging is within every model's capacity, but merging
		// two *large* reports still carries cognitive load that weaker
		// models pay: findings drop with the total content being merged.
		total := 0
		for _, r := range reports {
			total += len(r.Findings)
		}
		if total > 4 {
			pFind -= float64(total-4) * 0.15 * (1 - spec.Capability) * (1 - spec.Capability)
			if pFind < 0.80 {
				pFind = 0.80
			}
			pRef = pFind * 0.98
		}
	}

	var retained []*Report
	for i, rep := range reports {
		posFactor := 1.0
		if n > 2 && i > 0 && i < n-1 {
			posFactor = 0.85 // middle summaries suffer extra loss
		}
		kept := &Report{Preamble: rep.Preamble}
		for _, fd := range rep.Findings {
			if rng.Float64() >= pFind*posFactor {
				continue
			}
			var refs []string
			for _, r := range fd.Refs {
				if rng.Float64() < pRef {
					refs = append(refs, r)
				}
			}
			fd.Refs = refs
			kept.Findings = append(kept.Findings, fd)
		}
		for _, note := range rep.Notes {
			if rng.Float64() < pFind*posFactor {
				kept.Notes = append(kept.Notes, note)
			}
		}
		retained = append(retained, kept)
	}
	return MergeReports(retained).Format()
}

// truncateTail cuts content to max tokens, keeping the head.
func truncateTail(content string, max int) (string, bool) {
	if CountTokens(content) <= max {
		return content, false
	}
	lines := strings.Split(content, "\n")
	var out []string
	used := 0
	for _, l := range lines {
		t := CountTokens(l) + 1
		if used+t > max {
			break
		}
		out = append(out, l)
		used += t
	}
	return strings.Join(out, "\n"), true
}
