package llm

import "testing"

// FuzzParseReport: report parsing must never panic, and formatting the
// parse must be parseable again (idempotence after one normalization).
func FuzzParseReport(f *testing.F) {
	f.Add("I/O Performance Diagnosis\nISSUE: Small Write I/O Requests\nEvidence: x\n")
	f.Add("ISSUE: Unknown Thing\nReferences: a, b\nNotes:\n- note\n")
	f.Add("")
	f.Add("Evidence: orphan\nRecommendation: orphan\n")

	f.Fuzz(func(t *testing.T, text string) {
		rep := ParseReport(text)
		once := rep.Format()
		rep2 := ParseReport(once)
		twice := rep2.Format()
		if once != twice {
			t.Fatalf("Format not stable after one normalization:\n%q\nvs\n%q", once, twice)
		}
	})
}

// FuzzExtractFacts: fact extraction must never panic on arbitrary prompts.
func FuzzExtractFacts(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("TASK: rank\n=== CANDIDATE x ===\nbody\n")
	f.Add(`{"a": 1, "b": "s"}`)
	f.Add("# nprocs: notanumber\nPOSIX\tx\ty\tz\n")

	f.Fuzz(func(t *testing.T, text string) {
		facts := ExtractFacts(text)
		v := NewView(facts)
		runRules(v) // must not panic either
	})
}

// FuzzComplete: the full simulated model must never fail on arbitrary
// prompts for a known model.
func FuzzComplete(f *testing.F) {
	f.Add("diagnose this")
	f.Add("TASK: merge\n--- SUMMARY 1 ---\nISSUE: Small Write I/O Requests\n")
	f.Add("TASK: rank\nCRITERION: utility\n")
	f.Add("TASK: chat\nQUESTION: why?\n")

	sim := NewSim()
	f.Fuzz(func(t *testing.T, prompt string) {
		resp, err := sim.Complete(Prompt(GPT4o, prompt))
		if err != nil {
			t.Fatalf("Complete errored on fuzz input: %v", err)
		}
		if resp.Usage.PromptTokens < 0 || resp.Usage.CompletionTokens < 0 {
			t.Fatal("negative token usage")
		}
	})
}
