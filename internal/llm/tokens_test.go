package llm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountTokens(t *testing.T) {
	if got := CountTokens(""); got != 0 {
		t.Errorf("CountTokens(\"\") = %d", got)
	}
	if got := CountTokens("one two three four"); got != 5 { // 4 words + 4/3
		t.Errorf("CountTokens(4 words) = %d, want 5", got)
	}
}

func TestCountTokensMonotone(t *testing.T) {
	f := func(a, b string) bool {
		return CountTokens(a+" "+b) >= CountTokens(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTruncateMiddleNoop(t *testing.T) {
	text := "short prompt"
	out, cut := TruncateMiddle(text, 100)
	if cut || out != text {
		t.Errorf("short text must pass through unchanged")
	}
}

func TestTruncateMiddleKeepsHeadAndTail(t *testing.T) {
	var lines []string
	for i := 0; i < 400; i++ {
		lines = append(lines, strings.Repeat("tok ", 10))
	}
	lines[0] = "HEAD_MARKER"
	lines[200] = "MIDDLE_MARKER"
	lines[399] = "TAIL_MARKER"
	text := strings.Join(lines, "\n")

	out, cut := TruncateMiddle(text, 1000)
	if !cut {
		t.Fatal("expected truncation")
	}
	if !strings.Contains(out, "HEAD_MARKER") {
		t.Error("head lost")
	}
	if !strings.Contains(out, "TAIL_MARKER") {
		t.Error("tail lost")
	}
	if strings.Contains(out, "MIDDLE_MARKER") {
		t.Error("middle should be dropped (lost-in-the-middle)")
	}
	if !strings.Contains(out, truncMarker) {
		t.Error("truncation marker missing")
	}
	if CountTokens(out) > 1100 {
		t.Errorf("truncated text still has %d tokens", CountTokens(out))
	}
}

func TestModelsCatalog(t *testing.T) {
	for _, name := range Models() {
		spec, ok := LookupModel(name)
		if !ok {
			t.Fatalf("catalog inconsistency for %q", name)
		}
		if spec.ContextWindow <= 0 || spec.Capability <= 0 || spec.Capability > 1 {
			t.Errorf("model %q has invalid spec %+v", name, spec)
		}
		if spec.MergeCapacity < 1 {
			t.Errorf("model %q merge capacity %d", name, spec.MergeCapacity)
		}
	}
	if _, ok := LookupModel("gpt-99"); ok {
		t.Error("unknown model should not resolve")
	}
	// The frontier model must out-rank the open models on capability, and
	// o1's window must be too small for whole traces (Section III).
	g4o, _ := LookupModel(GPT4o)
	l31, _ := LookupModel(Llama31)
	l3, _ := LookupModel(Llama3)
	o1, _ := LookupModel(O1Preview)
	if !(g4o.Capability > l31.Capability && l31.Capability > l3.Capability) {
		t.Error("capability ordering gpt-4o > llama-3.1 > llama-3 violated")
	}
	if o1.ContextWindow >= g4o.ContextWindow {
		t.Error("o1-preview window must be smaller than gpt-4o's")
	}
}

func TestCostAccounting(t *testing.T) {
	spec, _ := LookupModel(GPT4o)
	u := Usage{PromptTokens: 1_000_000, CompletionTokens: 1_000_000}
	if got := spec.cost(u); got != spec.CostInPerMTok+spec.CostOutPerMTok {
		t.Errorf("cost = %g", got)
	}
	llama, _ := LookupModel(Llama31)
	if llama.cost(u) != 0 {
		t.Error("self-hosted llama should cost 0")
	}
}
