// Package llm provides the language-model substrate behind every LLM-backed
// component in this repository (IOAgent, ION, the plain-query baseline, and
// the evaluation judge).
//
// The paper drives proprietary (gpt-4o, gpt-4o-mini) and open-source
// (Llama-3.1-70B, Llama-3-70B) models through vendor SDKs. This module is
// offline and dependency-free, so the package implements a deterministic
// simulated model, SimLLM, behind the same Client interface a real SDK
// would present. SimLLM does not pretend to be a general language model; it
// faithfully models the specific behaviors the paper's results depend on:
//
//   - finite context windows with lost-in-the-middle truncation (Section I,
//     challenge 1): prompts beyond the window keep their head and tail and
//     lose the middle;
//   - positional attention decay: facts surviving in the middle of a long
//     context are noticed with lower probability than facts near the edges;
//   - imperfect domain reasoning: a diagnostic rule base is applied with a
//     per-model reliability (capability), boosted when retrieved reference
//     material supporting the rule's topic is present in the prompt (the
//     RAG grounding effect, Section IV-B);
//   - popular-misconception priors (hallucination, Section III): without
//     grounding, models emit plausible but wrong claims, such as "the
//     default 1 MB stripe size with stripe count 1 is optimal";
//   - bounded merge capacity (Section IV-C / Fig. 6): merging two diagnosis
//     summaries is reliable for every model, while one-shot merging of many
//     summaries drops findings and references;
//   - judge biases (Section VI-B / Fig. 4): ranking outputs exhibit
//     positional and name biases that the paper's three prompt
//     augmentations are designed to cancel.
//
// All behavior is deterministic: randomness is seeded from a hash of
// (model, prompt), so identical requests yield identical responses.
//
// # Prompt conventions
//
// SimLLM routes requests by a "TASK: <name>" line (describe, diagnose,
// filter, merge, rank, chat); prompts without a marker are treated as
// free-form diagnosis, which is how the plain-LLM and ION baselines behave.
// Retrieved references appear as "[SOURCE <key>] <text>" lines. Ranking
// prompts carry "=== CANDIDATE <name> ===" sections and optionally a
// "GROUND TRUTH ISSUES:" list. These conventions stand in for the prompt
// engineering a production system performs.
//
// # Reports
//
// Report is the structured diagnosis document every tool emits; its textual
// layout is a contract. Format renders it, ParseReport parses it back
// (round-trip safe), and MergeReports unions findings — the primitives
// behind the tree merge and the fleet snapshot codec, which persists only
// the canonical text and reconstructs the parsed form on recovery.
//
// # Middleware
//
// Client wrappers simulate deployment conditions and classify failures:
// Transient/IsTransient mark retryable errors (rate limits, overloads) and
// drive the fleet pool's retry-with-backoff layer, Flaky injects periodic
// transient failures, and WithLatency adds the network round trip that
// makes worker-scaling effects visible locally. All wrappers preserve the
// concurrency safety of the client they wrap.
package llm
