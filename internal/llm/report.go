package llm

import (
	"fmt"
	"sort"
	"strings"

	"ioagent/internal/issue"
)

// Finding is one diagnosed issue within a report.
type Finding struct {
	Label          issue.Label
	Evidence       string
	Recommendation string
	Refs           []string // citation keys
}

// Report is the structured diagnosis document every tool in this repository
// emits and that merge/judging steps parse back. The textual layout is the
// contract:
//
//	I/O Performance Diagnosis
//	<preamble>
//
//	ISSUE: <label>
//	Evidence: <text>
//	Recommendation: <text>
//	References: key1, key2
//
//	Notes:
//	<free-form observations>
type Report struct {
	Preamble string
	Findings []Finding
	Notes    []string
}

// reportHeader is the first line of every formatted report.
const reportHeader = "I/O Performance Diagnosis"

// Format renders the report in the canonical layout.
func (r *Report) Format() string {
	var b strings.Builder
	b.WriteString(reportHeader + "\n")
	if r.Preamble != "" {
		b.WriteString(r.Preamble + "\n")
	}
	for _, f := range r.Findings {
		b.WriteString("\nISSUE: " + string(f.Label) + "\n")
		if f.Evidence != "" {
			b.WriteString("Evidence: " + f.Evidence + "\n")
		}
		if f.Recommendation != "" {
			b.WriteString("Recommendation: " + f.Recommendation + "\n")
		}
		if len(f.Refs) > 0 {
			b.WriteString("References: " + strings.Join(f.Refs, ", ") + "\n")
		}
	}
	if len(r.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			b.WriteString("- " + n + "\n")
		}
	}
	return b.String()
}

// ParseReport parses text in the canonical layout (tolerantly: unknown
// lines inside a finding are appended to its evidence).
func ParseReport(text string) *Report {
	r := &Report{}
	var cur *Finding
	inNotes := false
	var preamble []string
	seenHeader := false

	flush := func() {
		if cur != nil {
			r.Findings = append(r.Findings, *cur)
			cur = nil
		}
	}
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == reportHeader:
			seenHeader = true
		case strings.HasPrefix(line, "ISSUE:"):
			flush()
			inNotes = false
			name := strings.TrimSpace(strings.TrimPrefix(line, "ISSUE:"))
			label, ok := issue.Parse(name)
			if !ok {
				label = issue.Label(name)
			}
			cur = &Finding{Label: label}
		case strings.HasPrefix(line, "Evidence:") && cur != nil:
			cur.Evidence = strings.TrimSpace(strings.TrimPrefix(line, "Evidence:"))
		case strings.HasPrefix(line, "Recommendation:") && cur != nil:
			cur.Recommendation = strings.TrimSpace(strings.TrimPrefix(line, "Recommendation:"))
		case strings.HasPrefix(line, "References:") && cur != nil:
			for _, k := range strings.Split(strings.TrimPrefix(line, "References:"), ",") {
				if k = strings.TrimSpace(k); k != "" {
					cur.Refs = append(cur.Refs, k)
				}
			}
		case line == "Notes:":
			flush()
			inNotes = true
		case inNotes && strings.HasPrefix(line, "- "):
			r.Notes = append(r.Notes, strings.TrimPrefix(line, "- "))
		case cur != nil && line != "":
			if cur.Evidence == "" {
				cur.Evidence = line
			} else {
				cur.Evidence += " " + line
			}
		case cur == nil && !inNotes && line != "" && seenHeader && len(r.Findings) == 0:
			preamble = append(preamble, line)
		}
	}
	flush()
	r.Preamble = strings.Join(preamble, " ")
	return r
}

// ClaimedLabels extracts the issue labels a diagnosis text claims, whether
// structured (ISSUE: lines) or free-form prose mentioning label names.
func ClaimedLabels(text string) issue.Set {
	out := make(issue.Set)
	for l := range ParseReport(text).Labels() {
		if _, known := issue.Descriptions[l]; known {
			out[l] = true
		} else if parsed, ok := issue.Parse(string(l)); ok {
			out[parsed] = true
		}
	}
	for l := range issue.FindMentions(text) {
		out[l] = true
	}
	return out
}

// Labels returns the set of issue labels claimed by the report.
func (r *Report) Labels() issue.Set {
	s := make(issue.Set)
	for _, f := range r.Findings {
		s[f.Label] = true
	}
	return s
}

// MergeReports combines reports into one, deduplicating findings by label
// (evidence strings are joined, references unioned) and concatenating
// notes. This is the *lossless* reference merge; SimLLM's merge task
// degrades from it according to the model's merge capacity.
func MergeReports(reports []*Report) *Report {
	out := &Report{}
	byLabel := make(map[issue.Label]*Finding)
	var order []issue.Label
	noteSeen := make(map[string]bool)
	for _, rep := range reports {
		if out.Preamble == "" {
			out.Preamble = rep.Preamble
		}
		for _, f := range rep.Findings {
			ex, ok := byLabel[f.Label]
			if !ok {
				cp := f
				cp.Refs = append([]string(nil), f.Refs...)
				byLabel[f.Label] = &cp
				order = append(order, f.Label)
				continue
			}
			if f.Evidence != "" && !strings.Contains(ex.Evidence, f.Evidence) {
				if ex.Evidence != "" {
					ex.Evidence += " "
				}
				ex.Evidence += f.Evidence
			}
			if ex.Recommendation == "" {
				ex.Recommendation = f.Recommendation
			}
			ex.Refs = unionRefs(ex.Refs, f.Refs)
		}
		for _, n := range rep.Notes {
			if !noteSeen[n] {
				noteSeen[n] = true
				out.Notes = append(out.Notes, n)
			}
		}
	}
	for _, l := range order {
		out.Findings = append(out.Findings, *byLabel[l])
	}
	return out
}

func unionRefs(a, b []string) []string {
	seen := make(map[string]bool, len(a))
	out := append([]string(nil), a...)
	for _, k := range a {
		seen[k] = true
	}
	for _, k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// AllRefs returns the union of citation keys across findings, sorted.
func (r *Report) AllRefs() []string {
	seen := make(map[string]bool)
	for _, f := range r.Findings {
		for _, k := range f.Refs {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Summary returns a one-line digest for logs and CLI output.
func (r *Report) Summary() string {
	labels := r.Labels().Sorted()
	if len(labels) == 0 {
		return "no issues detected"
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = string(l)
	}
	return fmt.Sprintf("%d issue(s): %s", len(labels), strings.Join(parts, "; "))
}
