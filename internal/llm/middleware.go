package llm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// TransientError marks a completion failure as retryable: the request was
// well-formed and a later identical attempt may succeed (rate limits,
// timeouts, overloaded backends). Permanent failures — an unknown model, a
// malformed request — are returned bare, so callers can distinguish the two
// with IsTransient and avoid burning retries on errors that cannot heal.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "llm: transient: " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a TransientError. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err (or anything it wraps) is a
// TransientError and therefore worth retrying.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// flaky injects periodic transient failures into an inner client.
type flaky struct {
	inner  Client
	period uint64
	calls  atomic.Uint64
}

// Flaky wraps c so that one call in every `period` fails with a
// TransientError (the first of each window fails, so a single retry always
// recovers). It models the rate-limit and overload errors a production LLM
// backend emits under fleet traffic; period <= 1 returns c unchanged.
// The wrapper is safe for concurrent use if c is.
func Flaky(c Client, period int) Client {
	if period <= 1 {
		return c
	}
	return &flaky{inner: c, period: uint64(period)}
}

func (f *flaky) Complete(req Request) (Response, error) {
	n := f.calls.Add(1)
	if n%f.period == 1 {
		return Response{}, Transient(fmt.Errorf("simulated backend overload (call %d)", n))
	}
	return f.inner.Complete(req)
}

// slow adds a fixed round-trip latency to every call of an inner client.
type slow struct {
	inner Client
	rtt   time.Duration
}

// WithLatency wraps c so every Complete call takes at least rtt, modeling
// the network round trip to a remote model API. SimLLM answers in
// microseconds, which hides the property fleet scheduling exists to
// exploit: real diagnosis time is dominated by API latency, so concurrent
// jobs overlap their waits. A non-positive rtt returns c unchanged.
// The wrapper is safe for concurrent use if c is.
func WithLatency(c Client, rtt time.Duration) Client {
	if rtt <= 0 {
		return c
	}
	return &slow{inner: c, rtt: rtt}
}

func (s *slow) Complete(req Request) (Response, error) {
	time.Sleep(s.rtt)
	return s.inner.Complete(req)
}
