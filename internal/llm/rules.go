package llm

import (
	"fmt"
	"sort"
	"strings"

	"ioagent/internal/issue"
)

// Derived-metric key vocabulary. IOAgent's summary extraction functions
// emit these keys in JSON fragments; the rule base consumes them directly
// when present and falls back to deriving the same quantities from raw
// Darshan counters (the path taken for raw-trace prompts such as ION's).
const (
	KeyNProcs    = "nprocs"
	KeyRuntime   = "runtime_s"
	KeyUsesMPI   = "uses_mpi"
	KeyPosixShr  = "posix_byte_share"
	KeyMpiioShr  = "mpiio_byte_share"
	KeyStdioShr  = "stdio_byte_share"
	KeyBytesRead = "bytes_read"
	KeyBytesWrit = "bytes_written"
	KeyPosixRB   = "posix_bytes_read"
	KeyPosixWB   = "posix_bytes_written"

	KeySmallWriteFrac = "small_write_fraction"
	KeySmallReadFrac  = "small_read_fraction"
	KeyWrites         = "write_ops"
	KeyReads          = "read_ops"
	KeySeqWriteFrac   = "seq_write_fraction"
	KeySeqReadFrac    = "seq_read_fraction"
	KeyUnalignedWrite = "misaligned_write_fraction"
	KeyUnalignedRead  = "misaligned_read_fraction"
	KeyMetaTimeFrac   = "meta_time_fraction"
	KeyMetaOpsPerProc = "meta_ops_per_proc"
	KeySharedFiles    = "shared_data_files"
	KeyCollWrites     = "collective_writes"
	KeyCollReads      = "collective_reads"
	KeyIndepWrites    = "independent_writes"
	KeyIndepReads     = "independent_reads"
	KeyStdioReadByt   = "stdio_bytes_read"
	KeyStdioWriteByt  = "stdio_bytes_written"
	KeyRereadFactor   = "max_reread_factor"
	KeyRankSlowRatio  = "rank_slowest_over_mean_time"
	KeyRankByteRatio  = "rank_slowest_over_fastest_bytes"
	KeyWideFiles      = "large_files_on_single_ost"
	KeyOSTCoverage    = "ost_coverage_fraction"
	KeyStripeWidth    = "stripe_width"
	KeyStripeSize     = "stripe_size"
	KeyNumOSTs        = "available_osts"
	KeyLargestFile    = "largest_file_bytes"
	KeyAccessSize     = "dominant_access_size"
)

// Rule thresholds. These encode the community heuristics the knowledge
// corpus documents (and roughly match Drishti's trigger constants).
const (
	smallFracThreshold     = 0.10 // >10% of ops under 1 MiB
	seqFracThreshold       = 0.60 // <60% sequential => random pattern
	unalignedFracThreshold = 0.10
	metaFracThreshold      = 0.25
	metaOpsPerProcMin      = 64
	rereadFactorThreshold  = 2.0
	rankRatioThreshold     = 2.0
	minOpsToJudge          = 16 // ignore patterns with almost no operations
	// minCollectiveBytes is the data-volume floor below which missing
	// collective I/O is not worth flagging (tiny config-style traffic).
	minCollectiveBytes = 8 << 20
)

// View answers the diagnostic questions the rule base asks, preferring
// derived metrics from summary fragments and falling back to raw counters.
type View struct{ f *FactSet }

// NewView wraps a FactSet.
func NewView(f *FactSet) *View { return &View{f: f} }

func (v *View) derivedOr(key string, fallback func() (float64, bool)) (float64, bool) {
	if x, ok := v.f.D(key); ok {
		return x, true
	}
	return fallback()
}

func (v *View) writes() (float64, bool) {
	return v.derivedOr(KeyWrites, func() (float64, bool) {
		if !v.f.Has("POSIX_WRITES") && !v.f.Has("STDIO_WRITES") {
			return 0, false
		}
		return v.f.C("POSIX_WRITES") + v.f.C("STDIO_WRITES"), true
	})
}

func (v *View) reads() (float64, bool) {
	return v.derivedOr(KeyReads, func() (float64, bool) {
		if !v.f.Has("POSIX_READS") && !v.f.Has("STDIO_READS") {
			return 0, false
		}
		return v.f.C("POSIX_READS") + v.f.C("STDIO_READS"), true
	})
}

// smallBuckets are the histogram suffixes below 1 MiB.
var smallBuckets = []string{"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M"}

func (v *View) smallFraction(op string, derivedKey string, opsKey string) (float64, bool) {
	return v.derivedOr(derivedKey, func() (float64, bool) {
		total := v.f.C("POSIX_" + opsKey)
		if total == 0 {
			return 0, false
		}
		var small float64
		present := false
		for _, b := range smallBuckets {
			k := "POSIX_SIZE_" + op + "_" + b
			if v.f.Has(k) {
				present = true
				small += v.f.C(k)
			}
		}
		if !present {
			return 0, false
		}
		return small / total, true
	})
}

// SmallWriteFraction is the share of write operations under 1 MiB.
func (v *View) SmallWriteFraction() (float64, bool) {
	return v.smallFraction("WRITE", KeySmallWriteFrac, "WRITES")
}

// SmallReadFraction is the share of read operations under 1 MiB.
func (v *View) SmallReadFraction() (float64, bool) {
	return v.smallFraction("READ", KeySmallReadFrac, "READS")
}

// SeqWriteFraction is the share of writes at non-decreasing offsets.
func (v *View) SeqWriteFraction() (float64, bool) {
	return v.derivedOr(KeySeqWriteFrac, func() (float64, bool) {
		w := v.f.C("POSIX_WRITES")
		if w == 0 || !v.f.Has("POSIX_SEQ_WRITES") {
			return 0, false
		}
		return v.f.C("POSIX_SEQ_WRITES") / w, true
	})
}

// SeqReadFraction is the share of reads at non-decreasing offsets.
func (v *View) SeqReadFraction() (float64, bool) {
	return v.derivedOr(KeySeqReadFrac, func() (float64, bool) {
		r := v.f.C("POSIX_READS")
		if r == 0 || !v.f.Has("POSIX_SEQ_READS") {
			return 0, false
		}
		return v.f.C("POSIX_SEQ_READS") / r, true
	})
}

// misalignedFractions attributes POSIX_FILE_NOT_ALIGNED to reads and writes
// proportionally to each file's operation mix (Darshan does not split the
// counter by direction).
func (v *View) misalignedFractions() (readFrac, writeFrac float64, ok bool) {
	if !v.f.Has("POSIX_FILE_NOT_ALIGNED") {
		return 0, 0, false
	}
	var readMis, writeMis, reads, writes float64
	for _, name := range v.f.sortedFiles() {
		fc := v.f.Files[name]
		na := fc["POSIX_FILE_NOT_ALIGNED"]
		r, w := fc["POSIX_READS"], fc["POSIX_WRITES"]
		reads += r
		writes += w
		if r+w == 0 {
			continue
		}
		readMis += na * r / (r + w)
		writeMis += na * w / (r + w)
	}
	if reads > 0 {
		readFrac = readMis / reads
	}
	if writes > 0 {
		writeFrac = writeMis / writes
	}
	return readFrac, writeFrac, true
}

// MisalignedWriteFraction is the estimated share of writes not aligned to
// the file system boundary.
func (v *View) MisalignedWriteFraction() (float64, bool) {
	return v.derivedOr(KeyUnalignedWrite, func() (float64, bool) {
		_, w, ok := v.misalignedFractions()
		return w, ok
	})
}

// MisalignedReadFraction is the estimated share of reads not aligned.
func (v *View) MisalignedReadFraction() (float64, bool) {
	return v.derivedOr(KeyUnalignedRead, func() (float64, bool) {
		r, _, ok := v.misalignedFractions()
		return r, ok
	})
}

// MetaTimeFraction is metadata time over total I/O time.
func (v *View) MetaTimeFraction() (float64, bool) {
	return v.derivedOr(KeyMetaTimeFrac, func() (float64, bool) {
		meta := v.f.C("POSIX_F_META_TIME") + v.f.C("STDIO_F_META_TIME") + v.f.C("MPIIO_F_META_TIME")
		data := v.f.C("POSIX_F_READ_TIME") + v.f.C("POSIX_F_WRITE_TIME") +
			v.f.C("STDIO_F_READ_TIME") + v.f.C("STDIO_F_WRITE_TIME")
		if meta+data == 0 {
			return 0, false
		}
		return meta / (meta + data), true
	})
}

// MetaOpsPerProc is the count of metadata operations per process.
func (v *View) MetaOpsPerProc() (float64, bool) {
	return v.derivedOr(KeyMetaOpsPerProc, func() (float64, bool) {
		ops := v.f.C("POSIX_OPENS") + v.f.C("POSIX_STATS") + v.f.C("STDIO_OPENS")
		if ops == 0 {
			return 0, false
		}
		n := v.f.NProcs
		if n <= 0 {
			n = 1
		}
		return ops / float64(n), true
	})
}

// SharedDataFiles counts shared (rank -1) records that move data.
func (v *View) SharedDataFiles() (float64, bool) {
	return v.derivedOr(KeySharedFiles, func() (float64, bool) {
		if len(v.f.Files) == 0 {
			return 0, false
		}
		var n float64
		for file := range v.f.SharedFiles {
			fc := v.f.Files[file]
			if fc["POSIX_BYTES_READ"]+fc["POSIX_BYTES_WRITTEN"] > 0 {
				n++
			}
		}
		return n, true
	})
}

// Collectives reports MPI-IO collective/independent op counts.
func (v *View) Collectives() (collR, collW, indepR, indepW float64, ok bool) {
	cr, ok1 := v.f.D(KeyCollReads)
	cw, ok2 := v.f.D(KeyCollWrites)
	ir, ok3 := v.f.D(KeyIndepReads)
	iw, ok4 := v.f.D(KeyIndepWrites)
	if ok1 || ok2 || ok3 || ok4 {
		return cr, cw, ir, iw, true
	}
	if !v.f.Has("MPIIO_COLL_WRITES") && !v.f.Has("MPIIO_INDEP_WRITES") &&
		!v.f.Has("MPIIO_COLL_READS") && !v.f.Has("MPIIO_INDEP_READS") {
		return 0, 0, 0, 0, false
	}
	return v.f.C("MPIIO_COLL_READS"), v.f.C("MPIIO_COLL_WRITES"),
		v.f.C("MPIIO_INDEP_READS"), v.f.C("MPIIO_INDEP_WRITES"), true
}

// StdioBytes reports bytes moved through the STDIO layer.
func (v *View) StdioBytes() (read, written float64, ok bool) {
	r, ok1 := v.f.D(KeyStdioReadByt)
	w, ok2 := v.f.D(KeyStdioWriteByt)
	if ok1 || ok2 {
		return r, w, true
	}
	if !v.f.Has("STDIO_BYTES_READ") && !v.f.Has("STDIO_BYTES_WRITTEN") {
		return 0, 0, false
	}
	return v.f.C("STDIO_BYTES_READ"), v.f.C("STDIO_BYTES_WRITTEN"), true
}

// TotalBytes reports total bytes moved (all layers).
func (v *View) TotalBytes() (read, written float64, ok bool) {
	r, ok1 := v.f.D(KeyBytesRead)
	w, ok2 := v.f.D(KeyBytesWrit)
	if ok1 && ok2 {
		return r, w, true
	}
	if !v.f.Has("POSIX_BYTES_READ") && !v.f.Has("POSIX_BYTES_WRITTEN") &&
		!v.f.Has("STDIO_BYTES_READ") && !v.f.Has("STDIO_BYTES_WRITTEN") {
		return 0, 0, false
	}
	return v.f.C("POSIX_BYTES_READ") + v.f.C("STDIO_BYTES_READ"),
		v.f.C("POSIX_BYTES_WRITTEN") + v.f.C("STDIO_BYTES_WRITTEN"), true
}

// RereadFactor is the largest ratio of bytes read to file extent across
// files (values over ~1 indicate repeated reads of the same data).
func (v *View) RereadFactor() (float64, bool) {
	return v.derivedOr(KeyRereadFactor, func() (float64, bool) {
		var best float64
		found := false
		for _, fc := range v.f.Files {
			br := fc["POSIX_BYTES_READ"]
			extent := fc["POSIX_MAX_BYTE_READ"] + 1
			if br > 0 && extent > 1 {
				found = true
				if f := br / extent; f > best {
					best = f
				}
			}
		}
		return best, found
	})
}

// RankImbalance reports the slowest-rank-over-mean time ratio and, when
// MPI-IO per-rank byte counts exist, the byte skew ratio. Per-rank records
// (file-per-process jobs) and shared-record reductions both feed the time
// ratio.
func (v *View) RankImbalance() (timeRatio float64, byteRatio float64, ok bool) {
	tr, ok1 := v.f.D(KeyRankSlowRatio)
	br, ok2 := v.f.D(KeyRankByteRatio)
	if ok1 || ok2 {
		return tr, br, true
	}
	n := float64(v.f.NProcs)
	if n <= 1 {
		return 0, 0, false
	}
	fastB := v.f.C("MPIIO_FASTEST_RANK_BYTES")
	slowB := v.f.C("MPIIO_SLOWEST_RANK_BYTES")
	if fastB > 0 {
		byteRatio = slowB / fastB
	}
	// File-per-process path: per-rank time accumulation (sorted ranks so
	// float summation order is stable).
	if len(v.f.RankTimes) >= 2 {
		ranks := make([]int, 0, len(v.f.RankTimes))
		for r := range v.f.RankTimes {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		var sum, slowest float64
		for _, r := range ranks {
			t := v.f.RankTimes[r]
			sum += t
			if t > slowest {
				slowest = t
			}
		}
		mean := sum / float64(len(v.f.RankTimes))
		if mean > 0 {
			return slowest / mean, byteRatio, true
		}
	}
	// Shared-record path: reduction counters.
	slow := v.f.C("POSIX_F_SLOWEST_RANK_TIME")
	total := v.f.C("POSIX_F_READ_TIME") + v.f.C("POSIX_F_WRITE_TIME")
	if slow == 0 || total == 0 {
		return 0, 0, false
	}
	mean := total / n
	if mean <= 0 {
		return 0, 0, false
	}
	return slow / mean, byteRatio, true
}

// StripePicture summarizes Lustre striping: the number of large files
// confined to a single OST, the fraction of available OSTs covered, and the
// dominant stripe settings.
func (v *View) StripePicture() (largeNarrow float64, coverage float64, width, size, osts float64, ok bool) {
	ln, ok1 := v.f.D(KeyWideFiles)
	cov, ok2 := v.f.D(KeyOSTCoverage)
	w, _ := v.f.D(KeyStripeWidth)
	sz, _ := v.f.D(KeyStripeSize)
	no, _ := v.f.D(KeyNumOSTs)
	if ok1 || ok2 {
		return ln, cov, w, sz, no, true
	}
	if !v.f.Has("LUSTRE_STRIPE_WIDTH") {
		return 0, 0, 0, 0, 0, false
	}
	// Raw-counter fallback: inspect per-file Lustre records.
	usedOSTs := make(map[float64]bool)
	totalOSTs := v.f.Counters["LUSTRE_OSTS"]
	var files float64
	for _, name := range v.f.sortedFiles() {
		fc := v.f.Files[name]
		sw, has := fc["LUSTRE_STRIPE_WIDTH"]
		if !has {
			continue
		}
		files++
		width = sw
		size = fc["LUSTRE_STRIPE_SIZE"]
		if o, hasO := fc["LUSTRE_OSTS"]; hasO {
			totalOSTs = o
		}
		extent := maxf(fc["POSIX_MAX_BYTE_WRITTEN"], fc["POSIX_MAX_BYTE_READ"]) + 1
		if sw <= 1 && extent > 4*fc["LUSTRE_STRIPE_SIZE"] && fc["LUSTRE_STRIPE_SIZE"] > 0 {
			largeNarrow++
		}
		for i := 0; i < int(sw) && i < 32; i++ {
			usedOSTs[fc[fmt.Sprintf("LUSTRE_OST_ID_%d", i)]] = true
		}
	}
	if files == 0 {
		return 0, 0, 0, 0, 0, false
	}
	if totalOSTs > 0 {
		coverage = float64(len(usedOSTs)) / totalOSTs
	}
	return largeNarrow, coverage, width, size, totalOSTs, true
}

// ruleHit is one fired diagnostic rule before grounding/citation.
type ruleHit struct {
	label    issue.Label
	evidence string
}

// runRules applies the full diagnostic rule base to the view and returns
// the fired rules in deterministic order. This is the "ideal expert"
// output; SimLLM degrades it by capability, attention, and grounding.
func runRules(v *View) []ruleHit {
	var hits []ruleHit
	add := func(label issue.Label, evidence string) {
		hits = append(hits, ruleHit{label, evidence})
	}
	nprocs := v.f.NProcs
	if nprocs <= 0 {
		if n, ok := v.f.D(KeyNProcs); ok {
			nprocs = int(n)
		}
	}

	// Small requests.
	if frac, ok := v.SmallWriteFraction(); ok && frac > smallFracThreshold {
		if w, okW := v.writes(); !okW || w >= minOpsToJudge {
			add(issue.SmallWrites, fmt.Sprintf(
				"%.0f%% of write requests transfer less than 1 MiB%s; small writes pay per-operation latency and defeat write-behind",
				frac*100, opCount(v.writes)))
		}
	}
	if frac, ok := v.SmallReadFraction(); ok && frac > smallFracThreshold {
		if r, okR := v.reads(); !okR || r >= minOpsToJudge {
			add(issue.SmallReads, fmt.Sprintf(
				"%.0f%% of read requests transfer less than 1 MiB%s; batching reads into larger transfers would recover bandwidth",
				frac*100, opCount(v.reads)))
		}
	}

	// Random access.
	if seq, ok := v.SeqWriteFraction(); ok && seq < seqFracThreshold {
		if w, okW := v.writes(); !okW || w >= minOpsToJudge {
			add(issue.RandomWrites, fmt.Sprintf(
				"only %.0f%% of writes land at non-decreasing offsets, indicating a random write pattern that defeats write-behind and fragments extents", seq*100))
		}
	}
	if seq, ok := v.SeqReadFraction(); ok && seq < seqFracThreshold {
		if r, okR := v.reads(); !okR || r >= minOpsToJudge {
			add(issue.RandomReads, fmt.Sprintf(
				"only %.0f%% of reads land at non-decreasing offsets, indicating a random read pattern that defeats prefetching", seq*100))
		}
	}

	// Misalignment.
	if frac, ok := v.MisalignedWriteFraction(); ok && frac > unalignedFracThreshold {
		add(issue.MisalignedWrites, fmt.Sprintf(
			"%.0f%% of write requests start at offsets not aligned with the file system boundary, forcing read-modify-write cycles", frac*100))
	}
	if frac, ok := v.MisalignedReadFraction(); ok && frac > unalignedFracThreshold {
		add(issue.MisalignedReads, fmt.Sprintf(
			"%.0f%% of read requests start at offsets not aligned with the file system boundary", frac*100))
	}

	// Metadata.
	metaFrac, okFrac := v.MetaTimeFraction()
	metaOps, okOps := v.MetaOpsPerProc()
	if okFrac && metaFrac > metaFracThreshold {
		ev := fmt.Sprintf("%.0f%% of I/O time is spent in metadata operations", metaFrac*100)
		if okOps {
			ev += fmt.Sprintf(" (%.0f open/stat operations per process)", metaOps)
		}
		add(issue.HighMetadataLoad, ev)
	} else if okOps && okFrac && metaOps > metaOpsPerProcMin && metaFrac > 0.10 {
		add(issue.HighMetadataLoad, fmt.Sprintf(
			"%.0f metadata operations per process with %.0f%% of I/O time in metadata indicates metadata pressure", metaOps, metaFrac*100))
	}

	// Shared file access.
	if shared, ok := v.SharedDataFiles(); ok && shared > 0 && nprocs > 1 {
		add(issue.SharedFileAccess, fmt.Sprintf(
			"%.0f file(s) are accessed concurrently by all %d ranks; shared-file access requires collective coordination or careful striping to avoid lock contention",
			shared, nprocs))
	}

	// Repetitive reads.
	if factor, ok := v.RereadFactor(); ok && factor > rereadFactorThreshold {
		add(issue.RepetitiveReads, fmt.Sprintf(
			"the application read %.1fx more bytes than the file extent, re-reading the same data repeatedly", factor))
	}

	// Rank imbalance.
	if tr, br, ok := v.RankImbalance(); ok {
		// Byte skew near 1 with high time skew under collective I/O is
		// expected (aggregators); require byte skew or no collectives.
		_, cw, _, _, haveColl := v.Collectives()
		aggregated := haveColl && cw > 0
		if br > rankRatioThreshold || (!aggregated && tr > rankRatioThreshold) {
			ev := fmt.Sprintf("the slowest rank spends %.1fx the mean rank I/O time", tr)
			if br > 0 {
				ev += fmt.Sprintf(" and moves %.1fx the bytes of the fastest rank", br)
			}
			add(issue.RankImbalance, ev)
		}
	}

	// MPI usage and collectives.
	mpiioPresent := false
	if _, _, _, _, ok := v.Collectives(); ok {
		mpiioPresent = true
	}
	usesMPI := v.f.UsesMPI || mpiioPresent
	if nprocs > 1 && !usesMPI {
		add(issue.MultiProcessNoMPI, fmt.Sprintf(
			"%d processes perform I/O without MPI; the storage stack sees uncoordinated streams it cannot aggregate or schedule jointly", nprocs))
	}
	if usesMPI && nprocs > 1 {
		shared, _ := v.SharedDataFiles()
		cr, cw, ir, iw, haveColl := v.Collectives()
		posixRB, posixWB := v.PosixBytes()
		// Missing collectives matter when ranks write shared files
		// independently, or when an MPI job bypasses the MPI-IO layer
		// entirely — and only for substantial volumes.
		if cw == 0 && posixWB >= minCollectiveBytes && (shared > 0 || !haveColl) {
			ev := fmt.Sprintf("%.0f MiB are written without collective I/O", posixWB/(1<<20))
			if iw > 0 {
				ev += fmt.Sprintf(" (%.0f independent MPI-IO writes, 0 collective)", iw)
			} else {
				ev += " (writes bypass MPI-IO entirely and go straight to POSIX)"
			}
			add(issue.NoCollectiveWrite, ev)
		}
		if cr == 0 && posixRB >= minCollectiveBytes && (shared > 0 || !haveColl) {
			ev := fmt.Sprintf("%.0f MiB are read without collective I/O", posixRB/(1<<20))
			if ir > 0 {
				ev += fmt.Sprintf(" (%.0f independent MPI-IO reads, 0 collective)", ir)
			} else {
				ev += " (reads bypass MPI-IO entirely and go straight to POSIX)"
			}
			add(issue.NoCollectiveRead, ev)
		}
	}

	// Low-level library usage.
	if sr, sw, ok := v.StdioBytes(); ok {
		tr, tw, okT := v.TotalBytes()
		if okT {
			if tw > 0 && sw/tw > 0.10 && sw > 1<<20 {
				add(issue.LowLevelLibWrite, fmt.Sprintf(
					"%.0f%% of written bytes (%.1f MiB) flow through the buffered STDIO layer, which serializes and copies every transfer", 100*sw/tw, sw/(1<<20)))
			}
			if tr > 0 && sr/tr > 0.10 && sr > 1<<20 {
				add(issue.LowLevelLibRead, fmt.Sprintf(
					"%.0f%% of read bytes (%.1f MiB) flow through the buffered STDIO layer", 100*sr/tr, sr/(1<<20)))
			}
		}
	}

	// Server / OST balance.
	if largeNarrow, coverage, width, size, osts, ok := v.StripePicture(); ok {
		tb, wb, okBytes := v.TotalBytes()
		bigVolume := okBytes && tb+wb >= 64<<20
		accessHint := ""
		if a, okA := v.f.D(KeyAccessSize); okA && a >= 1<<20 {
			accessHint = fmt.Sprintf("; the dominant access size is %.0f MiB per request", a/(1<<20))
		}
		switch {
		case largeNarrow > 0:
			add(issue.ServerImbalance, fmt.Sprintf(
				"%.0f large file(s) use a stripe count of %.0f with a %.0f KiB stripe size, confining their traffic to a single storage target while %.0f OSTs are available%s",
				largeNarrow, maxf(width, 1), size/1024, osts, accessHint))
		case coverage > 0 && coverage < 0.25 && osts >= 8 && bigVolume:
			add(issue.ServerImbalance, fmt.Sprintf(
				"the job's files cover only %.0f%% of the %.0f available OSTs, leaving most storage servers idle", coverage*100, osts))
		}
	}

	sort.SliceStable(hits, func(i, j int) bool {
		return labelOrder(hits[i].label) < labelOrder(hits[j].label)
	})
	return hits
}

// PosixBytes reports bytes moved through the POSIX layer (the traffic that
// could have used collective MPI-IO instead).
func (v *View) PosixBytes() (read, written float64) {
	if r, ok := v.f.D(KeyPosixRB); ok {
		read = r
	} else {
		read = v.f.C("POSIX_BYTES_READ")
	}
	if w, ok := v.f.D(KeyPosixWB); ok {
		written = w
	} else {
		written = v.f.C("POSIX_BYTES_WRITTEN")
	}
	return read, written
}

func opCount(get func() (float64, bool)) string {
	if n, ok := get(); ok && n > 0 {
		return fmt.Sprintf(" (of %.0f total)", n)
	}
	return ""
}

func labelOrder(l issue.Label) int {
	for i, x := range issue.All {
		if x == l {
			return i
		}
	}
	return len(issue.All)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// matchSources selects retrieved sources relevant to a label by topic
// keyword overlap (at least two distinct topic keywords must appear).
func matchSources(label issue.Label, sources []Source) []string {
	topics := issue.Topics[label]
	var keys []string
	for _, s := range sources {
		text := strings.ToLower(s.Text)
		n := 0
		for _, t := range topics {
			if strings.Contains(text, t) {
				n++
			}
		}
		if n >= 2 {
			keys = append(keys, s.Key)
		}
		if len(keys) == 3 {
			break
		}
	}
	return keys
}

// ExpertLabels runs the full diagnostic rule base over a complete trace
// text with no truncation, attention loss, or capability gating — the
// "ideal expert" reading. TraceBench uses it to verify that ground-truth
// labels are exactly what a perfect analyst would derive from each trace.
func ExpertLabels(traceText string) issue.Set {
	hits := runRules(NewView(ExtractFacts(traceText)))
	out := make(issue.Set)
	for _, h := range hits {
		out[h.label] = true
	}
	return out
}
