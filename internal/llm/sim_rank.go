package llm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"strconv"
	"strings"

	"ioagent/internal/issue"
)

// rank implements the LLM-as-judge task (paper Section VI-B). The judge
// scores each candidate diagnosis under the requested criterion and emits a
// best-to-worst ranking with an explanation. Crucially for the paper's
// Fig. 4 ablation, the judge also exhibits the biases the augmentations are
// designed to cancel:
//
//   - positional bias: candidates appearing earlier in the prompt receive a
//     small bonus (canceled by rotating content order, augmentation C);
//   - format-order bias: the candidate named first in the response-format
//     instruction receives a small bonus (canceled by rotating the rank
//     assignment order, augmentation B);
//   - name bias: recognizable tool names carry a prior (canceled by
//     anonymizing candidate names, augmentation A).
func (s *SimLLM) rank(prompt string, f *FactSet, spec ModelSpec, rng *rand.Rand) string {
	cands := f.Candidates
	if len(cands) == 0 {
		return "RANKING (best to worst):\nEXPLANATION: no candidates provided"
	}
	truth := make(issue.Set)
	for _, t := range f.Truth {
		if l, ok := issue.Parse(t); ok {
			truth[l] = true
		}
	}
	criterion := f.Criterion
	if criterion == "" {
		criterion = "accuracy"
	}

	formatOrder := parseFormatOrder(prompt, len(cands))
	anonymous := allAnonymous(cands)

	type scored struct {
		idx   int
		name  string
		score float64
		base  float64
	}
	out := make([]scored, len(cands))
	for i, c := range cands {
		var base float64
		switch criterion {
		case "utility":
			base = utilityScore(c.Text)
		case "interpretability":
			base = interpretabilityScore(c.Text)
		default:
			base = accuracyScore(c.Text, truth)
		}
		score := base
		// Judge noise.
		score += rng.NormFloat64() * judgeNoise(criterion)
		// Positional bias (content order).
		if len(cands) > 1 {
			score += 0.06 * float64(len(cands)-1-i) / float64(len(cands)-1)
		}
		// Format-order bias (rank assignment order).
		if len(formatOrder) > 0 && formatOrder[0] == i {
			score += 0.04
		}
		// Name bias.
		if !anonymous {
			score += (hash01(c.Name) - 0.5) * 0.12
		}
		out[i] = scored{idx: i, name: c.Name, score: score, base: base}
	}
	// Stable sort best-first; ties break by prompt order (itself a bias,
	// but one the content rotation also cancels).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].score > out[j-1].score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}

	var b strings.Builder
	b.WriteString("RANKING (best to worst):\n")
	for i, sc := range out {
		fmt.Fprintf(&b, "RANK %d: %s\n", i+1, sc.name)
	}
	fmt.Fprintf(&b, "EXPLANATION: ranked by %s; %s provided the strongest result", criterion, out[0].name)
	if len(truth) > 0 && criterion == "accuracy" {
		fmt.Fprintf(&b, ", matching the labeled issues most closely (F1 %.2f)", out[0].base)
	}
	b.WriteString(".\n")
	return b.String()
}

// judgeNoise is the standard deviation of the judge's scoring noise. The
// sizeable values reflect how subjective single-shot LLM rankings are —
// exactly why the paper averages four permutations per sample.
func judgeNoise(criterion string) float64 {
	switch criterion {
	case "utility", "interpretability":
		return 0.22
	default:
		return 0.16
	}
}

var formatOrderRe = regexp.MustCompile(`(?m)^FORMAT ORDER:\s*([0-9,\s]+)$`)

func parseFormatOrder(prompt string, n int) []int {
	m := formatOrderRe.FindStringSubmatch(prompt)
	if m == nil {
		return nil
	}
	var out []int
	for _, part := range strings.Split(m[1], ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && v >= 0 && v < n {
			out = append(out, v)
		}
	}
	return out
}

var anonNameRe = regexp.MustCompile(`^Tool-\d+$`)

func allAnonymous(cands []Candidate) bool {
	for _, c := range cands {
		if !anonNameRe.MatchString(c.Name) {
			return false
		}
	}
	return true
}

func hash01(s string) float64 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return float64(h.Sum32()%1000) / 999.0
}

// accuracyScore measures how well the candidate's claimed issues match the
// ground-truth labels (F1). Both structured reports and free-form prose
// are scored via ClaimedLabels.
func accuracyScore(text string, truth issue.Set) float64 {
	_, _, f1 := issue.F1(truth, ClaimedLabels(text))
	return f1
}

var digitRunRe = regexp.MustCompile(`\d+(\.\d+)?%?`)

// recommendationMarkers signal actionable advice in prose.
var recommendationMarkers = []string{
	"Recommendation:", "Consider", "consider", "should", "Use ", "use MPI",
	"Aggregate", "aggregate", "Align", "align", "Raise", "raise",
}

// utilityScore rates how actionable and information-dense a diagnosis is:
// claimed issues with concrete numbers, advice, references, and commands
// all help; burying few findings in a long report hurts (detail overload —
// the effect that costs the frontier model on simple traces).
func utilityScore(text string) float64 {
	n := len(ClaimedLabels(text))
	if n == 0 {
		return 0.05
	}
	words := len(strings.Fields(text))
	digits := len(digitRunRe.FindAllString(text, -1))
	advice := 0
	for _, m := range recommendationMarkers {
		advice += strings.Count(text, m)
	}
	var score float64
	score += 0.20 * minf(1, float64(advice)/float64(n)) // advice per finding
	score += 0.20 * minf(1, float64(digits)/45)         // absolute evidence depth
	score += 0.20 * minf(1, float64(n)/4)               // issue coverage
	if strings.Contains(text, "References:") {
		score += 0.15 // grounded, citable advice
	}
	if strings.Contains(text, "lfs setstripe") || strings.Contains(text, "MPI_File") ||
		strings.Contains(text, "romio_") {
		score += 0.10 // concrete commands
	}
	if nn := len(ParseReport(text).Notes); nn >= 2 {
		score += 0.10 // contextual observations beyond the findings
	}
	// Detail overload vs crispness: simple cases (few issues) read best as
	// short, direct answers (the paper's "too many details in such basic
	// cases"); long reports are fine when there is much to report.
	switch {
	case n <= 3 && words > 250:
		score -= 0.18
	case n <= 3 && words <= 220:
		score += 0.10
	case words >= 15*n:
		score += 0.08
	}
	return clamp01(score)
}

var jargonRe = regexp.MustCompile(`\b[A-Z][A-Z0-9]*(_[A-Z0-9]+)+\b`)

// interpretabilityScore rates readability: explicit structure, plain
// language, explanatory sentences, and proportionate length.
func interpretabilityScore(text string) float64 {
	words := len(strings.Fields(text))
	if words == 0 {
		return 0
	}
	rep := ParseReport(text)
	n := len(rep.Findings)
	claimed := len(ClaimedLabels(text))
	var score float64
	if n > 0 {
		score += 0.30 // structured findings with explicit issue headers
	} else if claimed > 0 {
		score += 0.30 // issues only discoverable by reading the prose
	}
	// Jargon density: raw counter names are opaque to domain scientists.
	jargon := len(jargonRe.FindAllString(text, -1))
	score -= minf(0.30, 3*float64(jargon)/float64(words))
	// Explanatory evidence in full sentences (14+ words reads as a real
	// explanation; clipped clauses do not).
	withEvidence := 0
	for _, f := range rep.Findings {
		if len(strings.Fields(f.Evidence)) >= 14 {
			withEvidence++
		}
	}
	if n > 0 {
		score += 0.30 * float64(withEvidence) / float64(n)
	}
	// Proportionate length: simple cases read best short and direct;
	// telegraphic one-liners explain nothing.
	if claimed > 0 {
		switch {
		case claimed <= 3 && words > 250:
			score -= 0.18
		case claimed <= 3 && words <= 220 && words >= 10*claimed:
			score += 0.15 + 0.12
		case words >= 10*claimed:
			score += 0.15
		default:
			score -= 0.10
		}
	}
	return clamp01(score)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// QualityScores exposes the judge's three per-criterion quality functions
// for one diagnosis text — useful for calibration, ablation benches, and
// debugging rank outcomes.
func QualityScores(text string, truth issue.Set) (accuracy, utility, interpretability float64) {
	return accuracyScore(text, truth), utilityScore(text), interpretabilityScore(text)
}
