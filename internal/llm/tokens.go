package llm

import "strings"

// CountTokens approximates the token count of text. Real tokenizers emit
// roughly 4/3 tokens per whitespace-separated word of technical English;
// the exact constant is irrelevant here as long as counting is
// deterministic and monotone in text length.
func CountTokens(text string) int {
	words := 0
	inWord := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c == ' ' || c == '\n' || c == '\t' || c == '\r' {
			inWord = false
			continue
		}
		if !inWord {
			words++
			inWord = true
		}
	}
	return words + words/3
}

// truncMarker is inserted where the middle of an over-long prompt was
// dropped.
const truncMarker = "[... context truncated ...]"

// TruncateMiddle enforces a context window of max tokens over text,
// modeling the lost-in-the-middle effect: when the text exceeds the window,
// the head and tail survive and the middle is dropped. Truncation operates
// on whole lines. It returns the surviving text and whether truncation
// occurred.
func TruncateMiddle(text string, max int) (string, bool) {
	if CountTokens(text) <= max {
		return text, false
	}
	lines := strings.Split(text, "\n")
	headBudget := max * 45 / 100
	tailBudget := max * 45 / 100

	var head []string
	used := 0
	i := 0
	for ; i < len(lines); i++ {
		t := CountTokens(lines[i]) + 1
		if used+t > headBudget {
			break
		}
		head = append(head, lines[i])
		used += t
	}
	var tail []string
	used = 0
	j := len(lines) - 1
	for ; j > i; j-- {
		t := CountTokens(lines[j]) + 1
		if used+t > tailBudget {
			break
		}
		tail = append([]string{lines[j]}, tail...)
		used += t
	}
	out := strings.Join(head, "\n") + "\n" + truncMarker + "\n" + strings.Join(tail, "\n")
	return out, true
}
