package llm

import (
	"fmt"
	"strings"
	"testing"

	"ioagent/internal/issue"
)

func complete(t *testing.T, model, prompt string) Response {
	t.Helper()
	resp, err := NewSim().Complete(Prompt(model, prompt))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	return resp
}

func TestUnknownModel(t *testing.T) {
	_, err := NewSim().Complete(Prompt("gpt-99", "hi"))
	if err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestDeterministicResponses(t *testing.T) {
	a := complete(t, GPT4o, sampleTrace)
	b := complete(t, GPT4o, sampleTrace)
	if a.Content != b.Content {
		t.Error("identical requests must return identical content")
	}
}

func TestDiagnoseFindsIssuesOnShortTrace(t *testing.T) {
	resp := complete(t, GPT4o, sampleTrace)
	labels := ClaimedLabels(resp.Content)
	if !labels[issue.SmallWrites] {
		t.Errorf("gpt-4o on a short trace should find small writes; got %v", labels.Sorted())
	}
	if !labels[issue.SharedFileAccess] {
		t.Errorf("shared file access missing; got %v", labels.Sorted())
	}
	if resp.Truncated {
		t.Error("short trace must not be truncated")
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 {
		t.Error("usage not accounted")
	}
	if resp.CostUSD <= 0 {
		t.Error("gpt-4o calls must cost money")
	}
}

// buildLongTrace creates a trace whose POSIX section is long filler and
// whose MPI-IO/LUSTRE evidence sits in the middle, so that context
// truncation plus attention decay degrade cross-module diagnoses.
func buildLongTrace(filler int) string {
	var b strings.Builder
	b.WriteString("# darshan log version: 3.41\n# exe: /bin/amrex.x\n# nprocs: 8\n# run time: 722.0000\n# metadata: mpi = 1\n")
	for i := 0; i < filler; i++ {
		fmt.Fprintf(&b, "POSIX\t-1\t%d\tPOSIX_SIZE_WRITE_100K_1M\t%d\t/scratch/plt%04d\t/scratch\tlustre\n", 1000+i, 10+i%3, i)
	}
	// The decisive cross-module facts live in the middle section.
	b.WriteString("POSIX\t-1\t111\tPOSIX_WRITES\t49152\t/scratch/chk.dat\t/scratch\tlustre\n")
	b.WriteString("POSIX\t-1\t111\tPOSIX_BYTES_WRITTEN\t51539607552\t/scratch/chk.dat\t/scratch\tlustre\n")
	b.WriteString("POSIX\t-1\t111\tPOSIX_MAX_BYTE_WRITTEN\t51539607551\t/scratch/chk.dat\t/scratch\tlustre\n")
	b.WriteString("MPI-IO\t-1\t111\tMPIIO_INDEP_WRITES\t49152\t/scratch/chk.dat\t/scratch\tlustre\n")
	b.WriteString("LUSTRE\t-1\t111\tLUSTRE_STRIPE_WIDTH\t1\t/scratch/chk.dat\t/scratch\tlustre\n")
	b.WriteString("LUSTRE\t-1\t111\tLUSTRE_STRIPE_SIZE\t1048576\t/scratch/chk.dat\t/scratch\tlustre\n")
	b.WriteString("LUSTRE\t-1\t111\tLUSTRE_OSTS\t16\t/scratch/chk.dat\t/scratch\tlustre\n")
	for i := 0; i < filler; i++ {
		fmt.Fprintf(&b, "STDIO\t0\t%d\tSTDIO_READS\t1\t/scratch/cfg%04d\t/scratch\tlustre\n", 5000+i, i)
	}
	return b.String()
}

func TestLongContextTruncationDegradesDiagnosis(t *testing.T) {
	long := buildLongTrace(2000) // far beyond the 8192-token window
	resp := complete(t, GPT4o, long)
	if !resp.Truncated {
		t.Fatal("long trace should be truncated")
	}
	if ClaimedLabels(resp.Content)[issue.NoCollectiveWrite] {
		t.Error("truncation dropped the MPI-IO middle section; the no-collective issue should be missed (lost-in-the-middle)")
	}
}

func TestShortContextKeepsCrossModuleIssue(t *testing.T) {
	short := buildLongTrace(5)
	resp := complete(t, GPT4o, short)
	if resp.Truncated {
		t.Fatal("short trace should fit")
	}
	if !ClaimedLabels(resp.Content)[issue.NoCollectiveWrite] {
		t.Errorf("short trace should surface the no-collective issue; got %v", ClaimedLabels(resp.Content).Sorted())
	}
}

func TestStripeMisconceptionWithoutGrounding(t *testing.T) {
	// Default striping (1 x 1MiB) on a big file: the correct diagnosis is
	// Server Load Imbalance; ungrounded models often claim the opposite.
	trace := buildLongTrace(5)
	sawMisconception, sawCorrect := false, false
	for seed := int64(0); seed < 12; seed++ {
		sim := &SimLLM{ExtraSeed: seed}
		resp, err := sim.Complete(Prompt(GPT4o, trace))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(resp.Content, "optimal for minimizing the number of I/O requests") {
			sawMisconception = true
		}
		if ClaimedLabels(resp.Content)[issue.ServerImbalance] {
			sawCorrect = true
		}
	}
	if !sawMisconception {
		t.Error("ungrounded model never emitted the stripe misconception across 12 seeds")
	}
	if !sawCorrect {
		t.Error("model never produced the correct striping diagnosis across 12 seeds")
	}
}

func TestGroundingSuppressesMisconception(t *testing.T) {
	trace := buildLongTrace(5) +
		"[SOURCE lockwood2018stripe] a stripe count of one confines traffic to a single object storage target; raise the stripe count with lfs setstripe for large files; stripe width imbalance hurts OST server utilization\n"
	for seed := int64(0); seed < 12; seed++ {
		sim := &SimLLM{ExtraSeed: seed}
		resp, err := sim.Complete(Prompt(GPT4o, trace))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(resp.Content, "optimal for minimizing the number of I/O requests") {
			t.Fatalf("seed %d: grounded prompt still emitted the stripe misconception", seed)
		}
	}
}

func TestGroundedFindingsCiteSources(t *testing.T) {
	prompt := `TASK: diagnose
{"module": "POSIX", "category": "io_size", "nprocs": 8, "uses_mpi": 1,
 "small_write_fraction": 0.9, "write_ops": 50000}
[SOURCE yang2019smallwrite] small write requests under 1 MB amplify latency; aggregate small writes into larger transfer size buffers
`
	resp := complete(t, GPT4o, prompt)
	rep := ParseReport(resp.Content)
	for _, f := range rep.Findings {
		if f.Label == issue.SmallWrites {
			if len(f.Refs) == 0 || f.Refs[0] != "yang2019smallwrite" {
				t.Errorf("grounded finding missing citation: %+v", f)
			}
			return
		}
	}
	t.Fatalf("small-write finding missing: %s", rep.Summary())
}

func TestDescribeTask(t *testing.T) {
	prompt := `TASK: describe
{"module": "POSIX", "category": "io_size", "nprocs": 8, "runtime_s": 722,
 "read_hist_0_100": 1.0, "small_read_fraction": 1.0, "bytes_read": 1048576}`
	resp := complete(t, GPT4o, prompt)
	if !strings.Contains(resp.Content, "100% of the read operations fall within the 0 bytes to 100 bytes range") {
		t.Errorf("histogram sentence missing:\n%s", resp.Content)
	}
	if !strings.Contains(resp.Content, "8 processes") {
		t.Errorf("job context missing:\n%s", resp.Content)
	}
}

func TestFilterTask(t *testing.T) {
	relevant := `TASK: filter
FRAGMENT:
85% of write requests transfer fewer than 1 MB, which classifies them as small writes; aggregating writes would recover bandwidth.
END FRAGMENT
[SOURCE yang2019smallwrite] small write requests amplify per-operation latency; aggregate small writes into buffers of at least 1 MB before flushing to recover write bandwidth
`
	resp := complete(t, GPT4o, relevant)
	if !strings.HasPrefix(resp.Content, "YES") {
		t.Errorf("relevant source rejected: %s", resp.Content)
	}

	irrelevant := `TASK: filter
FRAGMENT:
85% of write requests transfer fewer than 1 MB, which classifies them as small writes.
END FRAGMENT
[SOURCE xyz] coordinating applications' compute phases via network topology aware job placement reduces communication congestion on dragonfly interconnects
`
	resp = complete(t, GPT4o, irrelevant)
	if !strings.HasPrefix(resp.Content, "NO") {
		t.Errorf("irrelevant source accepted: %s", resp.Content)
	}
}

func mkSummary(label issue.Label, ref string) string {
	r := &Report{Findings: []Finding{{
		Label: label, Evidence: "evidence for " + string(label),
		Recommendation: issue.Recommendations[label], Refs: []string{ref},
	}}}
	return r.Format()
}

func mergePrompt(summaries ...string) string {
	var b strings.Builder
	b.WriteString("TASK: merge\n")
	for i, s := range summaries {
		fmt.Fprintf(&b, "--- SUMMARY %d ---\n%s\n", i+1, s)
	}
	b.WriteString("--- END SUMMARIES ---\n")
	return b.String()
}

func TestPairwiseMergeLossless(t *testing.T) {
	prompt := mergePrompt(
		mkSummary(issue.SmallWrites, "yang2019smallwrite"),
		mkSummary(issue.RandomReads, "shan2008characterizing"),
	)
	resp := complete(t, Llama3, prompt) // weakest model, pairwise regime
	rep := ParseReport(resp.Content)
	if len(rep.Findings) != 2 {
		t.Fatalf("pairwise merge lost findings: %s", rep.Summary())
	}
	if len(rep.AllRefs()) != 2 {
		t.Errorf("pairwise merge lost references: %v", rep.AllRefs())
	}
}

func TestOneShotMergeLosesContent(t *testing.T) {
	labels := []issue.Label{
		issue.SmallWrites, issue.RandomWrites, issue.HighMetadataLoad, issue.MisalignedWrites,
		issue.SharedFileAccess, issue.NoCollectiveWrite, issue.ServerImbalance, issue.SmallReads,
	}
	var summaries []string
	for _, l := range labels {
		summaries = append(summaries, mkSummary(l, "ref-"+string(l[0:4])))
	}
	resp := complete(t, Llama3, mergePrompt(summaries...))
	rep := ParseReport(resp.Content)
	if len(rep.Findings) >= len(labels) {
		t.Errorf("one-shot 8-way merge on a weak model should lose findings; kept %d/%d",
			len(rep.Findings), len(labels))
	}
}

func TestChatTask(t *testing.T) {
	diagnosis := (&Report{
		Preamble: "Analysis of ior.",
		Findings: []Finding{{
			Label:          issue.ServerImbalance,
			Evidence:       "the dominant access size is 4.0 MiB while files use a stripe count of 1 and a 1.0 MiB stripe size; 16 OSTs are available",
			Recommendation: issue.Recommendations[issue.ServerImbalance],
			Refs:           []string{"lockwood2018stripe"},
		}},
	}).Format()
	prompt := "TASK: chat\nPRIOR DIAGNOSIS:\n" + diagnosis + "\nQUESTION: How do I fix the stripe settings issue?\n"
	resp := complete(t, GPT4o, prompt)
	if !strings.Contains(resp.Content, "lfs setstripe -S 4M") {
		t.Errorf("chat answer should tailor the stripe size to the 4 MiB accesses:\n%s", resp.Content)
	}
	if !strings.Contains(resp.Content, "lfs setstripe -c 8") {
		t.Errorf("chat answer should raise the stripe count:\n%s", resp.Content)
	}
	if !strings.Contains(resp.Content, "lockwood2018stripe") {
		t.Errorf("chat answer should cite the diagnosis references:\n%s", resp.Content)
	}
}

func TestRankTask(t *testing.T) {
	good := (&Report{Findings: []Finding{
		{Label: issue.SmallWrites, Evidence: "85% of 49152 writes under 1 MiB", Recommendation: "Aggregate.", Refs: []string{"x"}},
		{Label: issue.SharedFileAccess, Evidence: "1 file shared by 8 ranks", Recommendation: "Use collectives."},
	}}).Format()
	bad := (&Report{Findings: []Finding{
		{Label: issue.HighMetadataLoad, Evidence: "metadata heavy"},
	}}).Format()

	prompt := `TASK: rank
CRITERION: accuracy
GROUND TRUTH ISSUES:
- Small Write I/O Requests
- Shared File Access

FORMAT ORDER: 0, 1
=== CANDIDATE Tool-1 ===
` + bad + `
=== CANDIDATE Tool-2 ===
` + good + `
=== END CANDIDATES ===
`
	resp := complete(t, GPT4o, prompt)
	lines := strings.Split(resp.Content, "\n")
	var rank1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "RANK 1:") {
			rank1 = strings.TrimSpace(strings.TrimPrefix(l, "RANK 1:"))
		}
	}
	if rank1 != "Tool-2" {
		t.Errorf("accurate candidate should rank first despite positional bias; got %q\n%s", rank1, resp.Content)
	}
	if !strings.Contains(resp.Content, "EXPLANATION:") {
		t.Error("ranking must include an explanation")
	}
}

func TestMaxTokensCapsOutput(t *testing.T) {
	req := Prompt(GPT4o, sampleTrace)
	req.MaxTokens = 10
	resp, err := NewSim().Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.CompletionTokens > 12 {
		t.Errorf("completion has %d tokens despite MaxTokens=10", resp.Usage.CompletionTokens)
	}
}

func TestVerbosityDiffersAcrossTiers(t *testing.T) {
	frontier := complete(t, GPT4o, sampleTrace)
	open := complete(t, Llama31, sampleTrace)
	if CountTokens(frontier.Content) <= CountTokens(open.Content) {
		t.Errorf("frontier model should elaborate more: %d vs %d tokens",
			CountTokens(frontier.Content), CountTokens(open.Content))
	}
}
