package llm_test

import (
	"errors"
	"fmt"

	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

// A Report round-trips through its canonical text layout: Format renders
// it, ParseReport recovers the structure. The fleet snapshot codec relies
// on this to persist only text and rebuild parsed reports on recovery.
func ExampleParseReport() {
	rep := &llm.Report{
		Findings: []llm.Finding{{
			Label:          issue.SmallWrites,
			Evidence:       "87% of write requests are smaller than 64 KiB",
			Recommendation: issue.Recommendations[issue.SmallWrites],
			Refs:           []string{"yang2019smallwrite"},
		}},
	}
	parsed := llm.ParseReport(rep.Format())
	fmt.Println(len(parsed.Findings))
	fmt.Println(parsed.Findings[0].Label == issue.SmallWrites)
	fmt.Println(parsed.AllRefs())
	// Output:
	// 1
	// true
	// [yang2019smallwrite]
}

// Transient marks an error as retryable; the fleet pool retries only these.
func ExampleIsTransient() {
	overload := llm.Transient(errors.New("429: rate limited"))
	badRequest := errors.New("400: malformed prompt")
	fmt.Println(llm.IsTransient(overload), llm.IsTransient(badRequest))
	// Output: true false
}

// SimLLM is deterministic: identical requests yield identical responses,
// which is what makes diagnoses content-addressable in the fleet cache.
func ExampleSimLLM() {
	client := llm.NewSim()
	a, err := client.Complete(llm.Prompt(llm.GPT4o, "TASK: describe\n{\"category\":\"io_size\"}\n"))
	if err != nil {
		fmt.Println(err)
		return
	}
	b, _ := client.Complete(llm.Prompt(llm.GPT4o, "TASK: describe\n{\"category\":\"io_size\"}\n"))
	fmt.Println(a.Content == b.Content, len(a.Content) > 0)
	// Output: true true
}
