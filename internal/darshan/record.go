package darshan

import (
	"fmt"
	"hash/fnv"
	"sort"

	"ioagent/internal/dxt"
)

// SharedRank is the rank value Darshan assigns to records that aggregate a
// file accessed by every rank (a "shared" file record).
const SharedRank = -1

// Mount describes one mount-table entry captured in the log header.
type Mount struct {
	Point  string // e.g. "/scratch"
	FSType string // e.g. "lustre", "gpfs", "nfs", "ext4"
}

// Job carries the per-execution header of a Darshan log.
type Job struct {
	UID       int
	JobID     int64
	StartTime int64 // unix seconds
	EndTime   int64 // unix seconds
	NProcs    int
	RunTime   float64 // seconds
	Exe       string
	Mounts    []Mount
	Metadata  map[string]string
}

// FileRecord holds the counters recorded for one (file, rank) pair within a
// module. Rank == SharedRank denotes a shared-file aggregate record.
type FileRecord struct {
	RecordID  uint64
	Rank      int
	Name      string // file path
	MountPt   string
	FSType    string
	Counters  map[string]int64
	FCounters map[string]float64
}

// NewFileRecord returns a record for the given path with empty counter maps
// and a deterministic RecordID derived from the path (as upstream Darshan
// hashes file names).
func NewFileRecord(path string, rank int) *FileRecord {
	return &FileRecord{
		RecordID:  HashRecordID(path),
		Rank:      rank,
		Name:      path,
		Counters:  make(map[string]int64),
		FCounters: make(map[string]float64),
	}
}

// HashRecordID derives the stable record identifier for a file path.
func HashRecordID(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64()
}

// C returns the integer counter value for name (zero when absent).
func (r *FileRecord) C(name string) int64 { return r.Counters[name] }

// F returns the float counter value for name (zero when absent).
func (r *FileRecord) F(name string) float64 { return r.FCounters[name] }

// AddC adds delta to the named integer counter.
func (r *FileRecord) AddC(name string, delta int64) { r.Counters[name] += delta }

// SetC sets the named integer counter.
func (r *FileRecord) SetC(name string, v int64) { r.Counters[name] = v }

// AddF adds delta to the named float counter.
func (r *FileRecord) AddF(name string, delta float64) { r.FCounters[name] += delta }

// SetF sets the named float counter.
func (r *FileRecord) SetF(name string, v float64) { r.FCounters[name] = v }

// MaxC raises the named integer counter to v if v is larger.
func (r *FileRecord) MaxC(name string, v int64) {
	if v > r.Counters[name] {
		r.Counters[name] = v
	}
}

// MaxF raises the named float counter to v if v is larger.
func (r *FileRecord) MaxF(name string, v float64) {
	if v > r.FCounters[name] {
		r.FCounters[name] = v
	}
}

// ModuleData groups the file records captured by one module.
type ModuleData struct {
	Module  ModuleID
	Records []*FileRecord
}

// Log is a fully decoded Darshan log.
type Log struct {
	Version string // log format version, e.g. "3.41"
	Job     Job
	Modules map[ModuleID]*ModuleData
	// DXT carries the per-operation extended-tracing event stream when the
	// log arrived as (or was derived from) a DXT rendering. Counter-only
	// logs leave it nil. Logs that carry it are a distinct trace modality:
	// their canonical form — the one ContentDigest hashes and Canonical
	// returns — is derived entirely from the event stream (see FromDXT),
	// so every rendering of the same events shares one content address.
	DXT *dxt.Trace
}

// NewLog returns an empty log with the current format version.
func NewLog() *Log {
	return &Log{
		Version: Version,
		Job:     Job{Metadata: make(map[string]string)},
		Modules: make(map[ModuleID]*ModuleData),
	}
}

// Version is the log format version written by this package.
const Version = "3.41"

// ShallowClone returns a copy of the log whose module map and record
// slices are private while the *FileRecord values themselves are shared.
// Encode canonicalizes record order by sorting in place, so any caller
// that must not mutate (or race with readers of) a shared log — the fleet
// digest, the persistence journal — encodes a shallow clone instead.
func (l *Log) ShallowClone() *Log {
	clone := &Log{
		Version: l.Version,
		Job:     l.Job,
		Modules: make(map[ModuleID]*ModuleData, len(l.Modules)),
		DXT:     l.DXT,
	}
	for m, md := range l.Modules {
		clone.Modules[m] = &ModuleData{
			Module:  md.Module,
			Records: append([]*FileRecord(nil), md.Records...),
		}
	}
	return clone
}

// Module returns the module data for m, creating it on first use.
func (l *Log) Module(m ModuleID) *ModuleData {
	md, ok := l.Modules[m]
	if !ok {
		md = &ModuleData{Module: m}
		l.Modules[m] = md
	}
	return md
}

// HasModule reports whether the log contains any records for module m.
func (l *Log) HasModule(m ModuleID) bool {
	md, ok := l.Modules[m]
	return ok && len(md.Records) > 0
}

// ModuleList returns the populated modules in canonical order.
func (l *Log) ModuleList() []ModuleID {
	var out []ModuleID
	for _, m := range AllModules {
		if l.HasModule(m) {
			out = append(out, m)
		}
	}
	return out
}

// Record finds the record of module m for the given path and rank, creating
// it if needed. Records are keyed by (RecordID, Rank).
func (md *ModuleData) Record(path string, rank int) *FileRecord {
	id := HashRecordID(path)
	for _, r := range md.Records {
		if r.RecordID == id && r.Rank == rank {
			return r
		}
	}
	r := NewFileRecord(path, rank)
	md.Records = append(md.Records, r)
	return r
}

// Find returns the record for (path, rank) or nil.
func (md *ModuleData) Find(path string, rank int) *FileRecord {
	id := HashRecordID(path)
	for _, r := range md.Records {
		if r.RecordID == id && r.Rank == rank {
			return r
		}
	}
	return nil
}

// SumC sums the named integer counter over all records of the module.
func (md *ModuleData) SumC(name string) int64 {
	var s int64
	for _, r := range md.Records {
		s += r.Counters[name]
	}
	return s
}

// SumF sums the named float counter over all records of the module.
func (md *ModuleData) SumF(name string) float64 {
	var s float64
	for _, r := range md.Records {
		s += r.FCounters[name]
	}
	return s
}

// Files returns the distinct file paths appearing in the module, sorted.
func (md *ModuleData) Files() []string {
	seen := make(map[string]bool)
	for _, r := range md.Records {
		seen[r.Name] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// SortRecords orders records by (Name, Rank) for deterministic output.
func (md *ModuleData) SortRecords() {
	sort.Slice(md.Records, func(i, j int) bool {
		a, b := md.Records[i], md.Records[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Rank < b.Rank
	})
}

// Validate checks that every counter stored in the log is a legal counter
// name for its module. It returns the first violation found.
func (l *Log) Validate() error {
	for _, m := range AllModules {
		md, ok := l.Modules[m]
		if !ok {
			continue
		}
		for _, r := range md.Records {
			for name := range r.Counters {
				if !IsCounter(m, name) {
					return fmt.Errorf("darshan: record %q: %q is not a counter of module %s", r.Name, name, m)
				}
			}
			for name := range r.FCounters {
				if !IsFCounter(m, name) {
					return fmt.Errorf("darshan: record %q: %q is not an fcounter of module %s", r.Name, name, m)
				}
			}
		}
	}
	return nil
}

// TotalBytes returns aggregate bytes read and written across POSIX and STDIO
// (the interfaces that ultimately move data; MPI-IO bytes land in POSIX in
// real stacks, and our simulator follows that convention).
func (l *Log) TotalBytes() (read, written int64) {
	if md, ok := l.Modules[ModulePOSIX]; ok {
		read += md.SumC("POSIX_BYTES_READ")
		written += md.SumC("POSIX_BYTES_WRITTEN")
	}
	if md, ok := l.Modules[ModuleSTDIO]; ok {
		read += md.SumC("STDIO_BYTES_READ")
		written += md.SumC("STDIO_BYTES_WRITTEN")
	}
	return read, written
}
