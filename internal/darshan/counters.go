package darshan

// This file defines the canonical counter name tables for each module,
// following the upstream Darshan 3.x counter sets. The tables drive the
// binary codec (counters are stored positionally) and give downstream
// tools a stable, validated vocabulary.

// sizeBuckets are the histogram bucket suffixes shared by the POSIX and
// MPI-IO access-size histograms, smallest first.
var sizeBuckets = []string{
	"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
	"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
}

// SizeBucketBounds returns the inclusive lower and exclusive upper byte
// bounds of histogram bucket i (0..9). The last bucket has upper = -1
// meaning unbounded.
func SizeBucketBounds(i int) (lo, hi int64) {
	bounds := []int64{0, 100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 4 << 20, 10 << 20, 100 << 20, 1 << 30, -1}
	return bounds[i], bounds[i+1]
}

// SizeBucketIndex maps a transfer size in bytes to its histogram bucket.
func SizeBucketIndex(n int64) int {
	for i := 0; i < len(sizeBuckets)-1; i++ {
		_, hi := SizeBucketBounds(i)
		if n < hi {
			return i
		}
	}
	return len(sizeBuckets) - 1
}

// NumSizeBuckets is the number of access-size histogram buckets.
const NumSizeBuckets = 10

func histNames(prefix, op string) []string {
	out := make([]string, 0, len(sizeBuckets))
	for _, b := range sizeBuckets {
		out = append(out, prefix+"_SIZE_"+op+"_"+b)
	}
	return out
}

func posixCounters() []string {
	names := []string{
		"POSIX_OPENS", "POSIX_FILENOS", "POSIX_DUPS",
		"POSIX_READS", "POSIX_WRITES", "POSIX_SEEKS", "POSIX_STATS",
		"POSIX_MMAPS", "POSIX_FSYNCS", "POSIX_FDSYNCS",
		"POSIX_MODE",
		"POSIX_BYTES_READ", "POSIX_BYTES_WRITTEN",
		"POSIX_MAX_BYTE_READ", "POSIX_MAX_BYTE_WRITTEN",
		"POSIX_CONSEC_READS", "POSIX_CONSEC_WRITES",
		"POSIX_SEQ_READS", "POSIX_SEQ_WRITES",
		"POSIX_RW_SWITCHES",
		"POSIX_MEM_NOT_ALIGNED", "POSIX_MEM_ALIGNMENT",
		"POSIX_FILE_NOT_ALIGNED", "POSIX_FILE_ALIGNMENT",
	}
	names = append(names, histNames("POSIX", "READ")...)
	names = append(names, histNames("POSIX", "WRITE")...)
	for i := 1; i <= 4; i++ {
		names = append(names, sprintfName("POSIX_STRIDE%d_STRIDE", i), sprintfName("POSIX_STRIDE%d_COUNT", i))
	}
	for i := 1; i <= 4; i++ {
		names = append(names, sprintfName("POSIX_ACCESS%d_ACCESS", i), sprintfName("POSIX_ACCESS%d_COUNT", i))
	}
	names = append(names,
		"POSIX_FASTEST_RANK", "POSIX_FASTEST_RANK_BYTES",
		"POSIX_SLOWEST_RANK", "POSIX_SLOWEST_RANK_BYTES",
	)
	return names
}

func posixFCounters() []string {
	return []string{
		"POSIX_F_OPEN_START_TIMESTAMP", "POSIX_F_READ_START_TIMESTAMP",
		"POSIX_F_WRITE_START_TIMESTAMP", "POSIX_F_CLOSE_START_TIMESTAMP",
		"POSIX_F_OPEN_END_TIMESTAMP", "POSIX_F_READ_END_TIMESTAMP",
		"POSIX_F_WRITE_END_TIMESTAMP", "POSIX_F_CLOSE_END_TIMESTAMP",
		"POSIX_F_READ_TIME", "POSIX_F_WRITE_TIME", "POSIX_F_META_TIME",
		"POSIX_F_MAX_READ_TIME", "POSIX_F_MAX_WRITE_TIME",
		"POSIX_F_FASTEST_RANK_TIME", "POSIX_F_SLOWEST_RANK_TIME",
		"POSIX_F_VARIANCE_RANK_TIME", "POSIX_F_VARIANCE_RANK_BYTES",
	}
}

func mpiioCounters() []string {
	names := []string{
		"MPIIO_INDEP_OPENS", "MPIIO_COLL_OPENS",
		"MPIIO_INDEP_READS", "MPIIO_INDEP_WRITES",
		"MPIIO_COLL_READS", "MPIIO_COLL_WRITES",
		"MPIIO_SPLIT_READS", "MPIIO_SPLIT_WRITES",
		"MPIIO_NB_READS", "MPIIO_NB_WRITES",
		"MPIIO_SYNCS", "MPIIO_HINTS", "MPIIO_VIEWS", "MPIIO_MODE",
		"MPIIO_BYTES_READ", "MPIIO_BYTES_WRITTEN",
		"MPIIO_RW_SWITCHES",
	}
	names = append(names, histNames("MPIIO", "READ_AGG")...)
	names = append(names, histNames("MPIIO", "WRITE_AGG")...)
	for i := 1; i <= 4; i++ {
		names = append(names, sprintfName("MPIIO_ACCESS%d_ACCESS", i), sprintfName("MPIIO_ACCESS%d_COUNT", i))
	}
	names = append(names,
		"MPIIO_FASTEST_RANK", "MPIIO_FASTEST_RANK_BYTES",
		"MPIIO_SLOWEST_RANK", "MPIIO_SLOWEST_RANK_BYTES",
	)
	return names
}

func mpiioFCounters() []string {
	return []string{
		"MPIIO_F_OPEN_START_TIMESTAMP", "MPIIO_F_READ_START_TIMESTAMP",
		"MPIIO_F_WRITE_START_TIMESTAMP", "MPIIO_F_CLOSE_START_TIMESTAMP",
		"MPIIO_F_OPEN_END_TIMESTAMP", "MPIIO_F_READ_END_TIMESTAMP",
		"MPIIO_F_WRITE_END_TIMESTAMP", "MPIIO_F_CLOSE_END_TIMESTAMP",
		"MPIIO_F_READ_TIME", "MPIIO_F_WRITE_TIME", "MPIIO_F_META_TIME",
		"MPIIO_F_MAX_READ_TIME", "MPIIO_F_MAX_WRITE_TIME",
		"MPIIO_F_FASTEST_RANK_TIME", "MPIIO_F_SLOWEST_RANK_TIME",
		"MPIIO_F_VARIANCE_RANK_TIME", "MPIIO_F_VARIANCE_RANK_BYTES",
	}
}

func stdioCounters() []string {
	return []string{
		"STDIO_OPENS", "STDIO_FDOPENS",
		"STDIO_READS", "STDIO_WRITES", "STDIO_SEEKS", "STDIO_FLUSHES",
		"STDIO_BYTES_READ", "STDIO_BYTES_WRITTEN",
		"STDIO_MAX_BYTE_READ", "STDIO_MAX_BYTE_WRITTEN",
		"STDIO_FASTEST_RANK", "STDIO_FASTEST_RANK_BYTES",
		"STDIO_SLOWEST_RANK", "STDIO_SLOWEST_RANK_BYTES",
	}
}

func stdioFCounters() []string {
	return []string{
		"STDIO_F_OPEN_START_TIMESTAMP", "STDIO_F_CLOSE_START_TIMESTAMP",
		"STDIO_F_READ_START_TIMESTAMP", "STDIO_F_WRITE_START_TIMESTAMP",
		"STDIO_F_OPEN_END_TIMESTAMP", "STDIO_F_CLOSE_END_TIMESTAMP",
		"STDIO_F_READ_END_TIMESTAMP", "STDIO_F_WRITE_END_TIMESTAMP",
		"STDIO_F_META_TIME", "STDIO_F_READ_TIME", "STDIO_F_WRITE_TIME",
		"STDIO_F_FASTEST_RANK_TIME", "STDIO_F_SLOWEST_RANK_TIME",
		"STDIO_F_VARIANCE_RANK_TIME", "STDIO_F_VARIANCE_RANK_BYTES",
	}
}

// MaxLustreOSTs bounds the per-file OST list recorded by the LUSTRE module.
// Upstream records one LUSTRE_OST_ID_<k> slot per stripe; we fix the table
// size so counters remain positional.
const MaxLustreOSTs = 32

func lustreCounters() []string {
	names := []string{
		"LUSTRE_OSTS", "LUSTRE_MDTS",
		"LUSTRE_STRIPE_OFFSET", "LUSTRE_STRIPE_SIZE", "LUSTRE_STRIPE_WIDTH",
	}
	for i := 0; i < MaxLustreOSTs; i++ {
		names = append(names, sprintfName("LUSTRE_OST_ID_%d", i))
	}
	return names
}

func sprintfName(format string, i int) string {
	// Tiny helper to keep the tables readable without importing fmt at
	// package scope in a hot path; counter tables are built once.
	b := make([]byte, 0, len(format)+4)
	for j := 0; j < len(format); j++ {
		if format[j] == '%' && j+1 < len(format) && format[j+1] == 'd' {
			b = appendInt(b, i)
			j++
			continue
		}
		b = append(b, format[j])
	}
	return string(b)
}

func appendInt(b []byte, i int) []byte {
	if i == 0 {
		return append(b, '0')
	}
	var tmp [8]byte
	n := 0
	for i > 0 {
		tmp[n] = byte('0' + i%10)
		i /= 10
		n++
	}
	for n > 0 {
		n--
		b = append(b, tmp[n])
	}
	return b
}

var (
	counterTables = map[ModuleID][]string{
		ModulePOSIX:  posixCounters(),
		ModuleMPIIO:  mpiioCounters(),
		ModuleSTDIO:  stdioCounters(),
		ModuleLustre: lustreCounters(),
	}
	fcounterTables = map[ModuleID][]string{
		ModulePOSIX:  posixFCounters(),
		ModuleMPIIO:  mpiioFCounters(),
		ModuleSTDIO:  stdioFCounters(),
		ModuleLustre: nil, // LUSTRE module records no float counters.
	}
	counterIndex  = buildIndex(counterTables)
	fcounterIndex = buildIndex(fcounterTables)
)

func buildIndex(tables map[ModuleID][]string) map[ModuleID]map[string]int {
	idx := make(map[ModuleID]map[string]int, len(tables))
	for m, names := range tables {
		mi := make(map[string]int, len(names))
		for i, n := range names {
			mi[n] = i
		}
		idx[m] = mi
	}
	return idx
}

// CounterNames returns the canonical integer counter names for a module, in
// positional (storage) order. The returned slice must not be modified.
func CounterNames(m ModuleID) []string { return counterTables[m] }

// FCounterNames returns the canonical float counter names for a module, in
// positional order. The returned slice must not be modified.
func FCounterNames(m ModuleID) []string { return fcounterTables[m] }

// IsCounter reports whether name is a valid integer counter of module m.
func IsCounter(m ModuleID, name string) bool {
	_, ok := counterIndex[m][name]
	return ok
}

// IsFCounter reports whether name is a valid float counter of module m.
func IsFCounter(m ModuleID, name string) bool {
	_, ok := fcounterIndex[m][name]
	return ok
}
