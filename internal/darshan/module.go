package darshan

import "fmt"

// ModuleID identifies an instrumentation module within a Darshan log.
type ModuleID uint8

// The modules handled by this reproduction. Upstream Darshan defines more
// (HDF5, PnetCDF, DXT, ...); the paper's pipeline consumes exactly these
// four (Table I).
const (
	ModulePOSIX ModuleID = iota
	ModuleMPIIO
	ModuleSTDIO
	ModuleLustre
	numModules
)

// AllModules lists every module in canonical log order.
var AllModules = []ModuleID{ModulePOSIX, ModuleMPIIO, ModuleSTDIO, ModuleLustre}

// String returns the upstream module name as it appears in darshan-parser
// output ("POSIX", "MPI-IO", "STDIO", "LUSTRE").
func (m ModuleID) String() string {
	switch m {
	case ModulePOSIX:
		return "POSIX"
	case ModuleMPIIO:
		return "MPI-IO"
	case ModuleSTDIO:
		return "STDIO"
	case ModuleLustre:
		return "LUSTRE"
	default:
		return fmt.Sprintf("MODULE(%d)", uint8(m))
	}
}

// ParseModuleID converts a module name from darshan-parser text back to a
// ModuleID.
func ParseModuleID(s string) (ModuleID, error) {
	switch s {
	case "POSIX":
		return ModulePOSIX, nil
	case "MPI-IO", "MPIIO":
		return ModuleMPIIO, nil
	case "STDIO":
		return ModuleSTDIO, nil
	case "LUSTRE":
		return ModuleLustre, nil
	}
	return 0, fmt.Errorf("darshan: unknown module %q", s)
}

// CounterPrefix returns the prefix used by the module's counter names
// ("POSIX", "MPIIO", "STDIO", "LUSTRE"). Note MPI-IO's prefix has no dash.
func (m ModuleID) CounterPrefix() string {
	if m == ModuleMPIIO {
		return "MPIIO"
	}
	return m.String()
}
