package darshan

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestModuleString(t *testing.T) {
	cases := map[ModuleID]string{
		ModulePOSIX:  "POSIX",
		ModuleMPIIO:  "MPI-IO",
		ModuleSTDIO:  "STDIO",
		ModuleLustre: "LUSTRE",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("ModuleID(%d).String() = %q, want %q", m, got, want)
		}
		back, err := ParseModuleID(want)
		if err != nil || back != m {
			t.Errorf("ParseModuleID(%q) = %v, %v; want %v", want, back, err, m)
		}
	}
	if _, err := ParseModuleID("HDF5"); err == nil {
		t.Error("ParseModuleID(HDF5) should fail")
	}
}

func TestCounterPrefix(t *testing.T) {
	if ModuleMPIIO.CounterPrefix() != "MPIIO" {
		t.Errorf("MPI-IO prefix = %q, want MPIIO", ModuleMPIIO.CounterPrefix())
	}
	for _, m := range AllModules {
		prefix := m.CounterPrefix()
		for _, n := range CounterNames(m) {
			if !strings.HasPrefix(n, prefix+"_") {
				t.Errorf("counter %q lacks prefix %q", n, prefix)
			}
		}
		for _, n := range FCounterNames(m) {
			if !strings.HasPrefix(n, prefix+"_F_") {
				t.Errorf("fcounter %q lacks prefix %q_F_", n, prefix)
			}
		}
	}
}

func TestCounterTablesDistinct(t *testing.T) {
	for _, m := range AllModules {
		seen := make(map[string]bool)
		for _, n := range CounterNames(m) {
			if seen[n] {
				t.Errorf("module %s: duplicate counter %q", m, n)
			}
			seen[n] = true
		}
		for _, n := range FCounterNames(m) {
			if seen[n] {
				t.Errorf("module %s: fcounter %q collides", m, n)
			}
			seen[n] = true
		}
	}
}

func TestCounterTableSizes(t *testing.T) {
	// Sanity floor: the POSIX module must carry the full histogram,
	// stride/access and variance counters the agent pipeline consumes.
	if n := len(CounterNames(ModulePOSIX)); n < 60 {
		t.Errorf("POSIX counter table has %d entries, want >= 60", n)
	}
	if n := len(CounterNames(ModuleMPIIO)); n < 40 {
		t.Errorf("MPIIO counter table has %d entries, want >= 40", n)
	}
	if n := len(CounterNames(ModuleLustre)); n != 5+MaxLustreOSTs {
		t.Errorf("LUSTRE counter table has %d entries, want %d", n, 5+MaxLustreOSTs)
	}
	if len(FCounterNames(ModuleLustre)) != 0 {
		t.Error("LUSTRE module must have no float counters")
	}
}

func TestIsCounter(t *testing.T) {
	if !IsCounter(ModulePOSIX, "POSIX_OPENS") {
		t.Error("POSIX_OPENS should be a POSIX counter")
	}
	if IsCounter(ModulePOSIX, "MPIIO_COLL_WRITES") {
		t.Error("MPIIO_COLL_WRITES must not be a POSIX counter")
	}
	if !IsFCounter(ModuleSTDIO, "STDIO_F_META_TIME") {
		t.Error("STDIO_F_META_TIME should be an STDIO fcounter")
	}
	if IsFCounter(ModuleSTDIO, "STDIO_OPENS") {
		t.Error("STDIO_OPENS is an integer counter, not an fcounter")
	}
}

func TestSizeBucketIndex(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {1023, 1}, {1024, 2},
		{10 << 10, 3}, {100 << 10, 4}, {1 << 20, 5}, {4 << 20, 6},
		{10 << 20, 7}, {100 << 20, 8}, {1 << 30, 9}, {5 << 30, 9},
	}
	for _, c := range cases {
		if got := SizeBucketIndex(c.n); got != c.want {
			t.Errorf("SizeBucketIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSizeBucketBoundsContiguous(t *testing.T) {
	for i := 0; i < NumSizeBuckets-1; i++ {
		_, hi := SizeBucketBounds(i)
		lo, _ := SizeBucketBounds(i + 1)
		if hi != lo {
			t.Errorf("bucket %d upper bound %d != bucket %d lower bound %d", i, hi, i+1, lo)
		}
	}
	lo, hi := SizeBucketBounds(NumSizeBuckets - 1)
	if lo != 1<<30 || hi != -1 {
		t.Errorf("last bucket bounds = (%d,%d), want (1<<30,-1)", lo, hi)
	}
}

// Property: every non-negative size lands in exactly the bucket whose bounds
// contain it.
func TestSizeBucketProperty(t *testing.T) {
	f := func(raw uint32) bool {
		n := int64(raw)
		i := SizeBucketIndex(n)
		lo, hi := SizeBucketBounds(i)
		if n < lo {
			return false
		}
		return hi == -1 || n < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
