// Package darshan models Darshan I/O characterization logs.
//
// Darshan is the de-facto standard I/O profiler on HPC systems. It records,
// for every file an application touches, a fixed set of integer counters and
// floating-point counters per instrumented interface ("module"): POSIX,
// MPI-IO, STDIO, and the Lustre file-system module. This package provides:
//
//   - the data model (Log, Job, FileRecord) and the canonical counter name
//     tables for each module, following the upstream Darshan 3.x definitions;
//   - a compact binary log codec (Encode/Decode), standing in for the
//     proprietary compressed format produced by the Darshan runtime;
//   - a text writer and parser compatible in spirit with the output of the
//     upstream darshan-parser tool, which is the format consumed by
//     downstream analysis tools (and by LLM agents in this repository).
//
// The package is a pure data layer: it never interprets counters. Issue
// detection lives in internal/drishti and internal/ioagent.
package darshan
