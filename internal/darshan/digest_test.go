package darshan

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// sampleLog builds a small deterministic log exercising both counter
// kinds plus header metadata.
func sampleLog(t *testing.T) *Log {
	t.Helper()
	l := NewLog()
	l.Job = Job{
		UID: 1001, JobID: 4242, StartTime: 1700000000, EndTime: 1700003600,
		NProcs: 8, RunTime: 3600.123456789, // > 4 decimals: exercises quantization
		Exe:      "/apps/bin/sim.x -in run.inp",
		Mounts:   []Mount{{"/scratch", "lustre"}},
		Metadata: map[string]string{"lib_ver": "3.4.1"},
	}
	r := NewFileRecord("/scratch/out.dat", SharedRank)
	r.MountPt, r.FSType = "/scratch", "lustre"
	r.SetC("POSIX_OPENS", 8)
	r.SetC("POSIX_BYTES_WRITTEN", 1<<20)
	r.SetF("POSIX_F_WRITE_TIME", 12.3456789012) // > 6 decimals
	l.Module(ModulePOSIX).Records = append(l.Module(ModulePOSIX).Records, r)
	return l
}

// TestContentDigestRenderingIndependent: the canonical content digest of
// a log must be identical whether the log arrived as the binary codec or
// as darshan-parser text — that equality is what the fleet routes and
// deduplicates on.
func TestContentDigestRenderingIndependent(t *testing.T) {
	orig := sampleLog(t)
	want, err := ContentDigest(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidContentDigest(want) {
		t.Fatalf("digest %q is not 64 hex chars", want)
	}

	var bin bytes.Buffer
	if err := Encode(&bin, orig); err != nil {
		t.Fatal(err)
	}
	fromBin, err := Decode(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotBin, err := ContentDigest(fromBin)
	if err != nil {
		t.Fatal(err)
	}
	if gotBin != want {
		t.Errorf("binary round trip changed the digest: %s != %s", gotBin, want)
	}

	text, err := TextString(orig)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	gotText, err := ContentDigest(fromText)
	if err != nil {
		t.Fatal(err)
	}
	if gotText != want {
		t.Errorf("text round trip changed the digest: %s != %s", gotText, want)
	}
}

// TestContentDigestRandomLogs: the rendering-independence property must
// hold for arbitrary structurally valid logs, not just the hand-built
// sample — floats of any precision, any module mix, shared and per-rank
// records.
func TestContentDigestRandomLogs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		l := randomLog(rng)
		if len(l.ModuleList()) == 0 {
			continue
		}
		want, err := ContentDigest(l)
		if err != nil {
			t.Fatal(err)
		}

		var bin bytes.Buffer
		if err := Encode(&bin, l); err != nil {
			t.Fatal(err)
		}
		fromBin, err := Decode(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := ContentDigest(fromBin); got != want {
			t.Fatalf("log %d: binary rendering digest %s != %s", i, got, want)
		}

		text, err := TextString(l)
		if err != nil {
			t.Fatal(err)
		}
		fromText, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := ContentDigest(fromText); got != want {
			t.Fatalf("log %d: text rendering digest %s != %s", i, got, want)
		}
	}
}

// TestContentDigestDiscriminates: different content, different digest.
func TestContentDigestDiscriminates(t *testing.T) {
	a := sampleLog(t)
	b := sampleLog(t)
	b.Module(ModulePOSIX).Records[0].AddC("POSIX_BYTES_WRITTEN", 1)
	da, _ := ContentDigest(a)
	db, _ := ContentDigest(b)
	if da == db {
		t.Error("digests collide across different counter values")
	}
}

// TestContentDigestDoesNotMutate: hashing must not reorder the caller's
// record slices (the pool shares logs across concurrent submissions).
func TestContentDigestDoesNotMutate(t *testing.T) {
	l := sampleLog(t)
	md := l.Module(ModulePOSIX)
	md.Records = append(md.Records, NewFileRecord("/scratch/zz.dat", 1), NewFileRecord("/scratch/aa.dat", 0))
	for _, r := range md.Records[len(md.Records)-2:] {
		r.SetC("POSIX_OPENS", 1)
	}
	before := make([]*FileRecord, len(md.Records))
	copy(before, md.Records)
	if _, err := ContentDigest(l); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if md.Records[i] != before[i] {
			t.Fatalf("ContentDigest reordered the caller's records at %d", i)
		}
	}
}

func TestValidContentDigest(t *testing.T) {
	good := strings.Repeat("ab12", 16)
	if !ValidContentDigest(good) {
		t.Errorf("ValidContentDigest(%q) = false", good)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("AB12", 16), good + "00"} {
		if ValidContentDigest(bad) {
			t.Errorf("ValidContentDigest(%q) = true", bad)
		}
	}
}

// TestLineParserMatchesParseText: feeding lines one by one must build the
// same log ParseText builds from the whole body.
func TestLineParserMatchesParseText(t *testing.T) {
	text, err := TextString(sampleLog(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLineParser()
	for _, line := range strings.Split(text, "\n") {
		if err := lp.ParseLine(line); err != nil {
			t.Fatal(err)
		}
	}
	dw, _ := ContentDigest(want)
	dg, _ := ContentDigest(lp.Log())
	if dw != dg {
		t.Errorf("line-at-a-time parse diverges from whole-body parse: %s != %s", dg, dw)
	}
}
