package darshan

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ioagent/internal/dxt"
)

// Binary log codec. The upstream Darshan runtime writes a zlib-compressed
// proprietary container; we reproduce the same role with a simple, versioned,
// gzip-compressed little-endian format:
//
//	magic "DSHN" | u16 version | job header | u8 nmodules |
//	  per module: u8 id | u32 nrecords |
//	    per record: u64 record id | i32 rank | str name | str mountpt |
//	      str fstype | counters (positional i64 per table) |
//	      fcounters (positional f64 per table)
//
// Counters are stored positionally against the canonical tables in
// counters.go, exactly as upstream stores fixed counter arrays.

const binaryMagic = "DSHN"

// binaryVersion is bumped whenever the on-disk layout changes.
const binaryVersion uint16 = 2

// binaryVersionDXT marks a log that carries a DXT event-stream section
// after the module records. Counter-only logs keep writing version 2, so
// every pre-DXT digest and on-disk cache entry is byte-stable; decoders
// accept both.
const binaryVersionDXT uint16 = 3

// Encode writes the log in binary form to w.
func Encode(w io.Writer, l *Log) error {
	gz := gzip.NewWriter(w)
	if err := encodeRaw(gz, l); err != nil {
		return err
	}
	return gz.Close()
}

// encodeRaw writes the uncompressed canonical byte stream (everything
// inside the gzip layer). ContentDigest hashes this form directly so the
// digest never depends on the compressor's output, which is not
// guaranteed stable across Go releases.
func encodeRaw(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	e := &encoder{w: bw}

	ver := binaryVersion
	if l.DXT != nil {
		ver = binaryVersionDXT
	}
	e.raw([]byte(binaryMagic))
	e.u16(ver)
	e.str(l.Version)
	e.encodeJob(&l.Job)

	mods := l.ModuleList()
	e.u8(uint8(len(mods)))
	for _, m := range mods {
		md := l.Modules[m]
		md.SortRecords()
		e.u8(uint8(m))
		e.u32(uint32(len(md.Records)))
		for _, r := range md.Records {
			e.encodeRecord(m, r)
		}
	}
	if l.DXT != nil {
		e.encodeDXT(l.DXT)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// encodeDXT appends the per-operation event stream (version 3 logs only).
func (e *encoder) encodeDXT(t *dxt.Trace) {
	e.i64(int64(t.NProcs))
	e.u32(uint32(len(t.Events)))
	for _, ev := range t.Events {
		e.str(ev.Module)
		e.i64(int64(ev.Rank))
		e.u8(uint8(ev.Op))
		e.i64(int64(ev.Seq))
		e.i64(ev.Offset)
		e.i64(ev.Length)
		e.f64(ev.Start)
		e.f64(ev.End)
		e.str(ev.File)
	}
}

// Decode reads a binary log from r.
func Decode(r io.Reader) (*Log, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("darshan: not a binary log: %w", err)
	}
	defer gz.Close()
	d := &decoder{r: bufio.NewReader(gz)}

	magic := d.raw(4)
	if d.err == nil && !bytes.Equal(magic, []byte(binaryMagic)) {
		return nil, fmt.Errorf("darshan: bad magic %q", magic)
	}
	ver := d.u16()
	if d.err == nil && ver != binaryVersion && ver != binaryVersionDXT {
		return nil, fmt.Errorf("darshan: unsupported binary version %d", ver)
	}

	l := NewLog()
	l.Version = d.str()
	d.decodeJob(&l.Job)

	nmods := int(d.u8())
	for i := 0; i < nmods && d.err == nil; i++ {
		m := ModuleID(d.u8())
		if m >= numModules {
			return nil, fmt.Errorf("darshan: bad module id %d", m)
		}
		nrec := int(d.u32())
		md := l.Module(m)
		for j := 0; j < nrec && d.err == nil; j++ {
			r, err := d.decodeRecord(m)
			if err != nil {
				return nil, err
			}
			md.Records = append(md.Records, r)
		}
	}
	if ver == binaryVersionDXT && d.err == nil {
		t, err := d.decodeDXT()
		if err != nil {
			return nil, err
		}
		l.DXT = t
	}
	if d.err != nil {
		return nil, d.err
	}
	return l, nil
}

// decodeDXT reads the version-3 event-stream section.
func (d *decoder) decodeDXT() (*dxt.Trace, error) {
	t := &dxt.Trace{NProcs: int(d.i64())}
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if n > maxDXTEvents {
		return nil, fmt.Errorf("darshan: DXT event count %d exceeds limit", n)
	}
	t.Events = make([]dxt.Event, n)
	for i := 0; i < n && d.err == nil; i++ {
		ev := &t.Events[i]
		ev.Module = d.str()
		ev.Rank = int(d.i64())
		ev.Op = dxt.OpKind(d.u8())
		ev.Seq = int(d.i64())
		ev.Offset = d.i64()
		ev.Length = d.i64()
		ev.Start = d.f64()
		ev.End = d.f64()
		ev.File = d.str()
	}
	return t, d.err
}

// maxDXTEvents guards against corrupt event-count prefixes.
const maxDXTEvents = 1 << 26

type encoder struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (e *encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}
func (e *encoder) u8(v uint8) { e.raw([]byte{v}) }
func (e *encoder) u16(v uint16) {
	binary.LittleEndian.PutUint16(e.buf[:2], v)
	e.raw(e.buf[:2])
}
func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.raw(e.buf[:4])
}
func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.raw(e.buf[:8])
}
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.raw([]byte(s))
}

func (e *encoder) encodeJob(j *Job) {
	e.i64(int64(j.UID))
	e.i64(j.JobID)
	e.i64(j.StartTime)
	e.i64(j.EndTime)
	e.i64(int64(j.NProcs))
	e.f64(j.RunTime)
	e.str(j.Exe)
	e.u32(uint32(len(j.Mounts)))
	for _, m := range j.Mounts {
		e.str(m.Point)
		e.str(m.FSType)
	}
	// Metadata in sorted key order for deterministic bytes.
	keys := sortedKeys(j.Metadata)
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.str(j.Metadata[k])
	}
}

func (e *encoder) encodeRecord(m ModuleID, r *FileRecord) {
	e.u64(r.RecordID)
	e.i64(int64(r.Rank))
	e.str(r.Name)
	e.str(r.MountPt)
	e.str(r.FSType)
	for _, name := range CounterNames(m) {
		e.i64(r.Counters[name])
	}
	for _, name := range FCounterNames(m) {
		e.f64(r.FCounters[name])
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	_, d.err = io.ReadFull(d.r, b)
	return b
}
func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	var b [1]byte
	_, d.err = io.ReadFull(d.r, b[:])
	return b[0]
}
func (d *decoder) u16() uint16 {
	if d.err != nil {
		return 0
	}
	_, d.err = io.ReadFull(d.r, d.buf[:2])
	return binary.LittleEndian.Uint16(d.buf[:2])
}
func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	_, d.err = io.ReadFull(d.r, d.buf[:4])
	return binary.LittleEndian.Uint32(d.buf[:4])
}
func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	_, d.err = io.ReadFull(d.r, d.buf[:8])
	return binary.LittleEndian.Uint64(d.buf[:8])
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// maxStrLen guards against corrupt length prefixes.
const maxStrLen = 1 << 20

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxStrLen {
		d.err = fmt.Errorf("darshan: string length %d exceeds limit", n)
		return ""
	}
	return string(d.raw(int(n)))
}

func (d *decoder) decodeJob(j *Job) {
	j.UID = int(d.i64())
	j.JobID = d.i64()
	j.StartTime = d.i64()
	j.EndTime = d.i64()
	j.NProcs = int(d.i64())
	j.RunTime = d.f64()
	j.Exe = d.str()
	nm := int(d.u32())
	if d.err != nil {
		return
	}
	if nm > maxStrLen {
		d.err = fmt.Errorf("darshan: mount count %d exceeds limit", nm)
		return
	}
	j.Mounts = make([]Mount, nm)
	for i := range j.Mounts {
		j.Mounts[i].Point = d.str()
		j.Mounts[i].FSType = d.str()
	}
	nk := int(d.u32())
	if d.err != nil {
		return
	}
	if nk > maxStrLen {
		d.err = fmt.Errorf("darshan: metadata count %d exceeds limit", nk)
		return
	}
	if j.Metadata == nil {
		j.Metadata = make(map[string]string, nk)
	}
	for i := 0; i < nk; i++ {
		k := d.str()
		v := d.str()
		if d.err == nil {
			j.Metadata[k] = v
		}
	}
}

func (d *decoder) decodeRecord(m ModuleID) (*FileRecord, error) {
	r := &FileRecord{
		Counters:  make(map[string]int64),
		FCounters: make(map[string]float64),
	}
	r.RecordID = d.u64()
	r.Rank = int(d.i64())
	r.Name = d.str()
	r.MountPt = d.str()
	r.FSType = d.str()
	for _, name := range CounterNames(m) {
		if v := d.i64(); v != 0 {
			r.Counters[name] = v
		}
	}
	for _, name := range FCounterNames(m) {
		if v := d.f64(); v != 0 {
			r.FCounters[name] = v
		}
	}
	return r, d.err
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
