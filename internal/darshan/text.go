package darshan

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format compatible in structure with upstream darshan-parser output:
// a commented header followed by one line per counter:
//
//	<module> <rank> <record id> <counter> <value> <file name> <mount pt> <fs type>
//
// File names containing spaces are not supported by the upstream format and
// are rejected here as well.

// WriteText renders the log in darshan-parser text form.
func WriteText(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "# darshan log version: %s\n", l.Version)
	fmt.Fprintf(bw, "# exe: %s\n", l.Job.Exe)
	fmt.Fprintf(bw, "# uid: %d\n", l.Job.UID)
	fmt.Fprintf(bw, "# jobid: %d\n", l.Job.JobID)
	fmt.Fprintf(bw, "# start_time: %d\n", l.Job.StartTime)
	fmt.Fprintf(bw, "# end_time: %d\n", l.Job.EndTime)
	fmt.Fprintf(bw, "# nprocs: %d\n", l.Job.NProcs)
	fmt.Fprintf(bw, "# run time: %.4f\n", l.Job.RunTime)
	for _, k := range sortedKeys(l.Job.Metadata) {
		fmt.Fprintf(bw, "# metadata: %s = %s\n", k, l.Job.Metadata[k])
	}
	for _, m := range l.Job.Mounts {
		fmt.Fprintf(bw, "# mount entry:\t%s\t%s\n", m.Point, m.FSType)
	}

	for _, m := range l.ModuleList() {
		md := l.Modules[m]
		md.SortRecords()
		fmt.Fprintf(bw, "\n# %s module data\n", m)
		fmt.Fprintf(bw, "#<module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\t<mount pt>\t<fs type>\n")
		for _, r := range md.Records {
			if strings.ContainsAny(r.Name, " \t") {
				return fmt.Errorf("darshan: file name %q contains whitespace", r.Name)
			}
			for _, name := range CounterNames(m) {
				v, ok := r.Counters[name]
				if !ok {
					continue
				}
				fmt.Fprintf(bw, "%s\t%d\t%d\t%s\t%d\t%s\t%s\t%s\n",
					m, r.Rank, r.RecordID, name, v, r.Name, r.MountPt, r.FSType)
			}
			for _, name := range FCounterNames(m) {
				v, ok := r.FCounters[name]
				if !ok {
					continue
				}
				fmt.Fprintf(bw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
					m, r.Rank, r.RecordID, name, formatFloat(v), r.Name, r.MountPt, r.FSType)
			}
		}
	}
	return bw.Flush()
}

// TextString is a convenience wrapper around WriteText.
func TextString(l *Log) (string, error) {
	var sb strings.Builder
	if err := WriteText(&sb, l); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 6, 64)
}

// ParseText decodes darshan-parser text form back into a Log.
func ParseText(r io.Reader) (*Log, error) {
	lp := NewLineParser()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if err := lp.ParseLine(sc.Text()); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return lp.Log(), nil
}

// LineParser is the incremental core of ParseText: it consumes
// darshan-parser text one complete line at a time and accumulates the
// decoded Log as it goes. Callers that receive the text in arbitrary
// chunks (a streaming HTTP body, a resumable upload) split their input on
// newlines and feed each line here, so module and counter pre-processing
// starts before the full body has arrived. Feeding the same lines in the
// same order always yields the same Log as a whole-body ParseText.
type LineParser struct {
	log    *Log
	lineno int
}

// NewLineParser returns a parser accumulating into an empty Log.
func NewLineParser() *LineParser {
	return &LineParser{log: NewLog()}
}

// ParseLine consumes one complete input line (without its trailing
// newline). Blank lines are skipped; errors name the 1-based line number.
func (lp *LineParser) ParseLine(raw string) error {
	lp.lineno++
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		if err := parseHeaderLine(lp.log, line); err != nil {
			return fmt.Errorf("darshan: line %d: %w", lp.lineno, err)
		}
		return nil
	}
	if err := parseCounterLine(lp.log, line); err != nil {
		return fmt.Errorf("darshan: line %d: %w", lp.lineno, err)
	}
	return nil
}

// Lines returns the number of lines consumed so far (blank lines
// included).
func (lp *LineParser) Lines() int { return lp.lineno }

// Log returns the accumulated log. It is live: further ParseLine calls
// keep mutating it, so streaming callers may inspect it mid-parse (for
// progress reporting) but must stop feeding before handing it off.
func (lp *LineParser) Log() *Log { return lp.log }

func parseHeaderLine(l *Log, line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	if body == "" || strings.HasPrefix(body, "<module>") {
		return nil
	}
	key, val, found := strings.Cut(body, ":")
	if !found {
		return nil // free-form comment (e.g. "# POSIX module data")
	}
	val = strings.TrimSpace(val)
	var err error
	switch strings.TrimSpace(key) {
	case "darshan log version":
		l.Version = val
	case "exe":
		l.Job.Exe = val
	case "uid":
		l.Job.UID, err = strconv.Atoi(val)
	case "jobid":
		l.Job.JobID, err = strconv.ParseInt(val, 10, 64)
	case "start_time":
		l.Job.StartTime, err = strconv.ParseInt(val, 10, 64)
	case "end_time":
		l.Job.EndTime, err = strconv.ParseInt(val, 10, 64)
	case "nprocs":
		l.Job.NProcs, err = strconv.Atoi(val)
	case "run time":
		l.Job.RunTime, err = strconv.ParseFloat(val, 64)
	case "metadata":
		k, v, ok := strings.Cut(val, "=")
		if !ok {
			return fmt.Errorf("bad metadata entry %q", val)
		}
		l.Job.Metadata[strings.TrimSpace(k)] = strings.TrimSpace(v)
	case "mount entry":
		fields := strings.Fields(val)
		if len(fields) != 2 {
			return fmt.Errorf("bad mount entry %q", val)
		}
		l.Job.Mounts = append(l.Job.Mounts, Mount{Point: fields[0], FSType: fields[1]})
	}
	return err
}

func parseCounterLine(l *Log, line string) error {
	fields := strings.Fields(line)
	if len(fields) != 8 {
		return fmt.Errorf("expected 8 fields, got %d in %q", len(fields), line)
	}
	m, err := ParseModuleID(fields[0])
	if err != nil {
		return err
	}
	rank, err := strconv.Atoi(fields[1])
	if err != nil {
		return fmt.Errorf("bad rank %q", fields[1])
	}
	recID, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("bad record id %q", fields[2])
	}
	counter, valStr := fields[3], fields[4]
	name, mountPt, fsType := fields[5], fields[6], fields[7]

	md := l.Module(m)
	r := md.Find(name, rank)
	if r == nil {
		r = NewFileRecord(name, rank)
		r.RecordID = recID
		r.MountPt = mountPt
		r.FSType = fsType
		md.Records = append(md.Records, r)
	}

	switch {
	case IsCounter(m, counter):
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return fmt.Errorf("bad integer value %q for %s", valStr, counter)
		}
		r.Counters[counter] = v
	case IsFCounter(m, counter):
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("bad float value %q for %s", valStr, counter)
		}
		r.FCounters[counter] = v
	default:
		return fmt.Errorf("unknown counter %q for module %s", counter, m)
	}
	return nil
}
