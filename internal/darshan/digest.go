package darshan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// ContentDigest returns the canonical content address of a log: the hex
// SHA-256 of its canonical binary encoding. Because the hash covers the
// decoded, canonicalized log — records sorted, counters positional,
// metadata in key order — and not the wire bytes it arrived as, the
// binary and darshan-parser-text renderings of one trace produce the SAME
// digest. That is the property the fleet's streaming ingest and cluster
// routing are built on: every party that can decode a trace agrees on its
// address without agreeing on its encoding.
//
// Rendering independence requires canonicalizing exactly what the text
// format cannot represent losslessly:
//
//   - floats quantize through the text precision (run time %.4f, float
//     counters %.6f) — the binary codec keeps full float64 bits, so
//     hashing them raw would split the renderings;
//   - records whose counters are all zero are dropped — the text form
//     has no line to carry them, while the binary form round-trips them
//     as empty records;
//   - the hash covers the uncompressed canonical stream (the bytes
//     inside Encode's gzip layer), so it is stable across compressor
//     versions.
//
// The canonicalization works on a private clone: the caller's log is
// neither mutated nor raced on.
func ContentDigest(l *Log) (string, error) {
	h := sha256.New()
	if err := encodeRaw(h, canonicalClone(l)); err != nil {
		return "", fmt.Errorf("darshan: content digest: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// quantize rounds v through the text rendering: format with the text
// form's precision, parse back. Both renderings of one value land on the
// same float64 because both pass through the identical format function.
func quantize(v float64, prec int) float64 {
	q, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'f', prec, 64), 64)
	return q
}

// canonicalClone builds the rendering-neutral form ContentDigest hashes:
// job and records are copied (never mutated in place), floats are
// quantized, and records with no nonzero counters are dropped.
//
// A DXT-carrying log canonicalizes through its event stream alone: the
// whole counter log is re-derived from the canonical (sorted, %.6f-
// quantized) events via FromDXT, and whatever job header or records the
// arriving rendering happened to carry are discarded — the DXT text form
// has no line for them, so keeping them would split the renderings. The
// canonical events themselves are part of the hashed stream (encodeRaw
// writes the version-3 DXT section), so two traces with different events
// but coincidentally equal derived counters still get distinct addresses.
func canonicalClone(l *Log) *Log {
	if l.DXT != nil {
		l = FromDXT(l.DXT) // private derived log; safe to canonicalize below
	}
	clone := &Log{
		Version: l.Version,
		Job:     l.Job,
		Modules: make(map[ModuleID]*ModuleData, len(l.Modules)),
		DXT:     l.DXT,
	}
	clone.Job.RunTime = quantize(l.Job.RunTime, 4)
	for m, md := range l.Modules {
		out := &ModuleData{Module: md.Module}
		for _, r := range md.Records {
			cr := &FileRecord{
				RecordID: r.RecordID, Rank: r.Rank,
				Name: r.Name, MountPt: r.MountPt, FSType: r.FSType,
				Counters:  r.Counters, // ints are exact; encodeRaw only reads
				FCounters: make(map[string]float64, len(r.FCounters)),
			}
			keep := false
			for _, v := range r.Counters {
				if v != 0 {
					keep = true
					break
				}
			}
			for name, v := range r.FCounters {
				if q := quantize(v, 6); q != 0 {
					cr.FCounters[name] = q
					keep = true
				}
			}
			if keep {
				out.Records = append(out.Records, cr)
			}
		}
		if len(out.Records) > 0 {
			clone.Modules[m] = out
		}
	}
	return clone
}

// Canonical returns the rendering-neutral form of a log: the same private
// clone ContentDigest hashes (floats quantized through the text precision,
// all-zero records dropped). Two renderings of one trace — binary and
// darshan-parser text — canonicalize to logs with identical contents, so
// any deterministic function of a Canonical log (feature extraction,
// heuristic analysis) is rendering-independent by construction. The
// caller's log is never mutated; the returned clone is the caller's own.
func Canonical(l *Log) *Log {
	return canonicalClone(l)
}

// ValidContentDigest reports whether s is shaped like a ContentDigest
// value (64 lowercase hex characters). Servers use it to refuse malformed
// client-asserted digests before trusting them for routing.
func ValidContentDigest(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
