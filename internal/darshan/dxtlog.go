package darshan

import (
	"sort"

	"ioagent/internal/dxt"
)

// DXTFileAlignment is the file-alignment boundary assumed when deriving
// POSIX alignment counters from a DXT event stream. DXT events carry no
// alignment metadata, so the derivation checks offsets against the page
// size — the same default the upstream Darshan runtime reports for
// POSIX_FILE_ALIGNMENT on most POSIX filesystems.
const DXTFileAlignment = 4096

// FromDXT derives a counter Log from a per-operation DXT event stream and
// attaches the stream to the result (Log.DXT). The derivation is a pure,
// deterministic function of the canonical event stream — two renderings of
// the same events (the darshan-dxt-parser text form, the binary container)
// derive byte-identical logs, which is what makes ContentDigest
// rendering-canonical for the DXT modality.
//
// The derived counters mirror what the Darshan runtime itself aggregates
// from the operations it observes: op counts, byte volumes, access-size
// histograms, sequential/consecutive shares, alignment, per-direction I/O
// time, and fastest/slowest-rank aggregates on shared files. What DXT does
// not trace cannot be derived: there are no metadata operations (stats,
// seeks, syncs), so POSIX_F_META_TIME stays zero and an open is inferred
// only as "each rank that touched a file opened it once". A metadata storm
// is therefore invisible in the DXT modality — the modality contract
// ARCHITECTURE.md documents, and the reason expected scenario labels
// differ per modality.
func FromDXT(t *dxt.Trace) *Log {
	ct := t.Canonical()
	l := NewLog()
	l.Job.NProcs = ct.NProcs

	// Bucket events by (module class, file); remember per-rank order to
	// derive sequential/consecutive counts and rank aggregates.
	type fileKey struct {
		mod  ModuleID
		file string
	}
	byFile := map[fileKey][]dxt.Event{}
	var keys []fileKey
	for _, e := range ct.Events {
		if e.Rank+1 > l.Job.NProcs {
			l.Job.NProcs = e.Rank + 1
		}
		if e.End > l.Job.RunTime {
			l.Job.RunTime = e.End
		}
		mod, ok := moduleForDXT(e.Module)
		if !ok {
			continue // unknown module spelling: tolerated, not derived
		}
		k := fileKey{mod, e.File}
		if _, seen := byFile[k]; !seen {
			keys = append(keys, k)
		}
		byFile[k] = append(byFile[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mod != keys[j].mod {
			return keys[i].mod < keys[j].mod
		}
		return keys[i].file < keys[j].file
	})

	mpi := false
	for _, k := range keys {
		if k.mod == ModuleMPIIO {
			mpi = true
		}
		deriveFileRecord(l, k.mod, k.file, byFile[k])
	}
	if mpi {
		l.Job.Metadata["mpi"] = "1"
	}
	l.DXT = ct
	return l
}

// moduleForDXT maps a DXT module spelling onto the counter module its
// derived record lands in.
func moduleForDXT(m string) (ModuleID, bool) {
	switch m {
	case "X_POSIX":
		return ModulePOSIX, true
	case "X_MPIIO":
		return ModuleMPIIO, true
	case "X_STDIO":
		return ModuleSTDIO, true
	}
	return 0, false
}

// deriveFileRecord aggregates one file's events into a counter record. A
// file touched by more than one rank becomes a shared (Rank == SharedRank)
// aggregate record with fastest/slowest-rank counters, exactly as the
// Darshan runtime reduces shared files; a single-rank file keeps its rank.
func deriveFileRecord(l *Log, mod ModuleID, file string, evs []dxt.Event) {
	ranks := map[int][]dxt.Event{}
	for _, e := range evs {
		ranks[e.Rank] = append(ranks[e.Rank], e)
	}
	rank := evs[0].Rank
	if len(ranks) > 1 {
		rank = SharedRank
	}
	r := l.Module(mod).Record(file, rank)

	prefix := mod.String() // "POSIX", "MPIIO", "STDIO"
	readCounter, writeCounter := prefix+"_READS", prefix+"_WRITES"
	if mod == ModuleMPIIO {
		readCounter, writeCounter = "MPIIO_INDEP_READS", "MPIIO_INDEP_WRITES"
	}

	for _, e := range evs {
		dur := e.End - e.Start
		if dur < 0 {
			dur = 0
		}
		if e.Op == dxt.OpRead {
			r.AddC(readCounter, 1)
			r.AddC(prefix+"_BYTES_READ", e.Length)
			r.MaxC(prefix+"_MAX_BYTE_READ", e.Offset+e.Length-1)
			r.AddF(prefix+"_F_READ_TIME", dur)
			if mod != ModuleSTDIO {
				r.AddC(sizeHistName(mod, "READ", e.Length), 1)
			}
		} else {
			r.AddC(writeCounter, 1)
			r.AddC(prefix+"_BYTES_WRITTEN", e.Length)
			r.MaxC(prefix+"_MAX_BYTE_WRITTEN", e.Offset+e.Length-1)
			r.AddF(prefix+"_F_WRITE_TIME", dur)
			if mod != ModuleSTDIO {
				r.AddC(sizeHistName(mod, "WRITE", e.Length), 1)
			}
		}
		if mod == ModulePOSIX && e.Offset%DXTFileAlignment != 0 {
			r.AddC("POSIX_FILE_NOT_ALIGNED", 1)
		}
	}
	if mod == ModulePOSIX {
		r.SetC("POSIX_FILE_ALIGNMENT", DXTFileAlignment)
	}

	// Per-rank passes: an open per contributing rank, sequentiality in
	// per-rank start order, and the shared-file rank aggregates.
	opensCounter := prefix + "_OPENS"
	if mod == ModuleMPIIO {
		opensCounter = "MPIIO_INDEP_OPENS"
	}
	rankIDs := make([]int, 0, len(ranks))
	for rk := range ranks {
		rankIDs = append(rankIDs, rk)
	}
	sort.Ints(rankIDs)

	type rankAgg struct {
		rank  int
		bytes int64
		busy  float64
	}
	var fastest, slowest *rankAgg
	for _, rk := range rankIDs {
		r.AddC(opensCounter, 1)
		res := ranks[rk]
		sort.SliceStable(res, func(i, j int) bool { return res[i].Start < res[j].Start })
		agg := &rankAgg{rank: rk}
		prevEnd := map[dxt.OpKind]int64{dxt.OpRead: -1, dxt.OpWrite: -1}
		for _, e := range res {
			agg.bytes += e.Length
			if d := e.End - e.Start; d > 0 {
				agg.busy += d
			}
			if mod == ModulePOSIX {
				if pe := prevEnd[e.Op]; pe >= 0 {
					dir := "WRITES"
					if e.Op == dxt.OpRead {
						dir = "READS"
					}
					if e.Offset >= pe {
						r.AddC("POSIX_SEQ_"+dir, 1)
					}
					if e.Offset == pe {
						r.AddC("POSIX_CONSEC_"+dir, 1)
					}
				}
				prevEnd[e.Op] = e.Offset + e.Length
			}
		}
		if fastest == nil || agg.busy < fastest.busy {
			fastest = agg
		}
		if slowest == nil || agg.busy > slowest.busy {
			slowest = agg
		}
	}
	if rank == SharedRank && fastest != nil && slowest != nil {
		r.SetC(prefix+"_FASTEST_RANK", int64(fastest.rank))
		r.SetC(prefix+"_FASTEST_RANK_BYTES", fastest.bytes)
		r.SetC(prefix+"_SLOWEST_RANK", int64(slowest.rank))
		r.SetC(prefix+"_SLOWEST_RANK_BYTES", slowest.bytes)
		r.SetF(prefix+"_F_FASTEST_RANK_TIME", fastest.busy)
		r.SetF(prefix+"_F_SLOWEST_RANK_TIME", slowest.busy)
	}
}

// sizeHistName returns the access-size histogram counter for one transfer,
// e.g. POSIX_SIZE_WRITE_100_1K or MPIIO_SIZE_READ_AGG_1M_4M.
func sizeHistName(mod ModuleID, op string, n int64) string {
	if mod == ModuleMPIIO {
		op += "_AGG"
	}
	return mod.String() + "_SIZE_" + op + "_" + sizeBuckets[SizeBucketIndex(n)]
}
