package darshan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseText: the text parser must never panic and must round-trip
// whatever it accepts.
func FuzzParseText(f *testing.F) {
	l := NewLog()
	l.Job = Job{UID: 1, JobID: 2, StartTime: 3, EndTime: 4, NProcs: 8, RunTime: 1.5,
		Exe: "/bin/x", Metadata: map[string]string{"mpi": "1"}}
	l.Job.Mounts = []Mount{{"/scratch", "lustre"}}
	r := l.Module(ModulePOSIX).Record("/scratch/f", 0)
	r.SetC("POSIX_OPENS", 1)
	r.SetF("POSIX_F_META_TIME", 0.25)
	seed, _ := TextString(l)
	f.Add(seed)
	f.Add("# darshan log version: 3.41\n")
	f.Add("POSIX\t0\t1\tPOSIX_OPENS\t1\t/f\t/\text4\n")
	f.Add("garbage\nlines\n\n# run time: xx\n")

	f.Fuzz(func(t *testing.T, text string) {
		log, err := ParseText(strings.NewReader(text))
		if err != nil {
			return
		}
		// Anything accepted must render and re-parse.
		out, err := TextString(log)
		if err != nil {
			return // names with spaces are rejected at render time
		}
		if _, err := ParseText(strings.NewReader(out)); err != nil {
			t.Fatalf("render/re-parse failed: %v\n%s", err, out)
		}
	})
}

// FuzzDecode: the binary decoder must never panic on arbitrary bytes.
func FuzzDecode(f *testing.F) {
	l := NewLog()
	l.Job.NProcs = 2
	l.Module(ModulePOSIX).Record("/f", 0).SetC("POSIX_OPENS", 1)
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("DSHN garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := log.Validate(); err != nil {
			// Corrupt-but-decodable inputs may carry unknown counters;
			// Validate flagging them is correct behavior, not a crash.
			return
		}
	})
}
