package darshan

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomLog builds a structurally valid random log for round-trip tests.
func randomLog(rng *rand.Rand) *Log {
	l := NewLog()
	l.Job = Job{
		UID:       rng.Intn(65536),
		JobID:     rng.Int63n(1 << 40),
		StartTime: 1700000000 + rng.Int63n(1e6),
		NProcs:    1 + rng.Intn(1024),
		RunTime:   float64(rng.Intn(100000)) / 7.0,
		Exe:       "/apps/bin/sim.x -in run.inp",
		Metadata:  map[string]string{"lib_ver": "3.4.1", "h": "nid00042"},
	}
	l.Job.EndTime = l.Job.StartTime + int64(l.Job.RunTime) + 1
	l.Job.Mounts = []Mount{{"/scratch", "lustre"}, {"/home", "nfs"}}

	for _, m := range AllModules {
		if rng.Intn(4) == 0 {
			continue // leave some modules empty
		}
		md := l.Module(m)
		nrec := 1 + rng.Intn(5)
		for i := 0; i < nrec; i++ {
			rank := SharedRank
			if rng.Intn(2) == 0 {
				rank = rng.Intn(l.Job.NProcs)
			}
			path := "/scratch/file" + string(rune('a'+i))
			r := NewFileRecord(path, rank)
			r.MountPt, r.FSType = "/scratch", "lustre"
			names := CounterNames(m)
			for j := 0; j < 8 && j < len(names); j++ {
				r.Counters[names[rng.Intn(len(names))]] = rng.Int63n(1 << 32)
			}
			for _, fn := range FCounterNames(m) {
				if rng.Intn(3) == 0 {
					r.FCounters[fn] = float64(rng.Intn(1e6)) / 13.0
				}
			}
			md.Records = append(md.Records, r)
		}
	}
	return l
}

func logsEquivalent(t *testing.T, a, b *Log) {
	t.Helper()
	if a.Version != b.Version {
		t.Errorf("version %q != %q", a.Version, b.Version)
	}
	// The text form writes run time with 4 decimals; compare with tolerance.
	if math.Abs(a.Job.RunTime-b.Job.RunTime) > 1e-3 {
		t.Errorf("run time %g != %g", a.Job.RunTime, b.Job.RunTime)
	}
	ja, jb := a.Job, b.Job
	ja.RunTime, jb.RunTime = 0, 0
	if !reflect.DeepEqual(ja, jb) {
		t.Errorf("job mismatch:\n  a=%+v\n  b=%+v", ja, jb)
	}
	if len(a.ModuleList()) != len(b.ModuleList()) {
		t.Fatalf("module lists differ: %v vs %v", a.ModuleList(), b.ModuleList())
	}
	for _, m := range a.ModuleList() {
		ra, rb := a.Modules[m].Records, b.Modules[m].Records
		if len(ra) != len(rb) {
			t.Fatalf("module %s: %d vs %d records", m, len(ra), len(rb))
		}
		a.Modules[m].SortRecords()
		b.Modules[m].SortRecords()
		for i := range ra {
			x, y := ra[i], rb[i]
			if x.Name != y.Name || x.Rank != y.Rank || x.RecordID != y.RecordID {
				t.Errorf("module %s record %d identity mismatch: %v vs %v", m, i, x, y)
			}
			for k, v := range x.Counters {
				if v != 0 && y.Counters[k] != v {
					t.Errorf("module %s %s[%s]: %d vs %d", m, x.Name, k, v, y.Counters[k])
				}
			}
			for k, v := range x.FCounters {
				if v != 0 && math.Abs(y.FCounters[k]-v) > 1e-4 {
					t.Errorf("module %s %s[%s]: %g vs %g", m, x.Name, k, v, y.FCounters[k])
				}
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		l := randomLog(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, l); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		logsEquivalent(t, l, got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		l := randomLog(rng)
		text, err := TextString(l)
		if err != nil {
			t.Fatalf("TextString: %v", err)
		}
		got, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("ParseText: %v", err)
		}
		logsEquivalent(t, l, got)
	}
}

func TestTextHeaderFields(t *testing.T) {
	l := NewLog()
	l.Job = Job{UID: 100, JobID: 42, StartTime: 10, EndTime: 732, NProcs: 8,
		RunTime: 722, Exe: "/bin/amrex", Metadata: map[string]string{}}
	l.Job.Mounts = []Mount{{"/scratch", "lustre"}}
	text, err := TextString(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# darshan log version: 3.41",
		"# exe: /bin/amrex",
		"# nprocs: 8",
		"# run time: 722.0000",
		"# mount entry:\t/scratch\tlustre",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q", want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a log"))); err == nil {
		t.Error("Decode of garbage should fail")
	}
}

func TestParseTextRejectsBadCounter(t *testing.T) {
	bad := "POSIX\t0\t1\tNOT_A_COUNTER\t5\t/f\t/\text4\n"
	if _, err := ParseText(strings.NewReader(bad)); err == nil {
		t.Error("ParseText should reject unknown counters")
	}
}

func TestParseTextRejectsShortLine(t *testing.T) {
	bad := "POSIX\t0\t1\tPOSIX_OPENS\t5\n"
	if _, err := ParseText(strings.NewReader(bad)); err == nil {
		t.Error("ParseText should reject short lines")
	}
}

func TestWriteTextRejectsSpacesInNames(t *testing.T) {
	l := NewLog()
	r := l.Module(ModulePOSIX).Record("/bad path", 0)
	r.SetC("POSIX_OPENS", 1)
	if _, err := TextString(l); err == nil {
		t.Error("WriteText should reject file names with spaces")
	}
}

func TestRecordHelpers(t *testing.T) {
	r := NewFileRecord("/f", 3)
	r.AddC("POSIX_OPENS", 2)
	r.AddC("POSIX_OPENS", 3)
	if r.C("POSIX_OPENS") != 5 {
		t.Errorf("AddC: got %d, want 5", r.C("POSIX_OPENS"))
	}
	r.MaxC("POSIX_MAX_BYTE_READ", 10)
	r.MaxC("POSIX_MAX_BYTE_READ", 4)
	if r.C("POSIX_MAX_BYTE_READ") != 10 {
		t.Errorf("MaxC: got %d, want 10", r.C("POSIX_MAX_BYTE_READ"))
	}
	r.AddF("POSIX_F_READ_TIME", 1.5)
	r.MaxF("POSIX_F_MAX_READ_TIME", 0.25)
	r.MaxF("POSIX_F_MAX_READ_TIME", 0.125)
	if r.F("POSIX_F_MAX_READ_TIME") != 0.25 {
		t.Errorf("MaxF: got %g, want 0.25", r.F("POSIX_F_MAX_READ_TIME"))
	}
}

func TestLogValidate(t *testing.T) {
	l := NewLog()
	r := l.Module(ModulePOSIX).Record("/f", 0)
	r.SetC("POSIX_OPENS", 1)
	if err := l.Validate(); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}
	r.SetC("BOGUS", 1)
	if err := l.Validate(); err == nil {
		t.Error("Validate should reject unknown counter names")
	}
}

func TestModuleHelpers(t *testing.T) {
	l := NewLog()
	md := l.Module(ModulePOSIX)
	md.Record("/b", 1).SetC("POSIX_BYTES_READ", 10)
	md.Record("/a", 0).SetC("POSIX_BYTES_READ", 5)
	md.Record("/a", 0).SetC("POSIX_BYTES_WRITTEN", 7)

	if got := md.SumC("POSIX_BYTES_READ"); got != 15 {
		t.Errorf("SumC = %d, want 15", got)
	}
	files := md.Files()
	if !reflect.DeepEqual(files, []string{"/a", "/b"}) {
		t.Errorf("Files = %v", files)
	}
	if md.Find("/a", 0) == nil || md.Find("/a", 1) != nil {
		t.Error("Find misbehaves")
	}
	read, written := l.TotalBytes()
	if read != 15 || written != 7 {
		t.Errorf("TotalBytes = (%d,%d), want (15,7)", read, written)
	}
}

// Property: HashRecordID is deterministic and distinct paths rarely collide
// (we only require determinism here).
func TestHashRecordIDDeterministic(t *testing.T) {
	f := func(s string) bool { return HashRecordID(s) == HashRecordID(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
