package darshan

import (
	"bytes"
	"strings"
	"testing"

	"ioagent/internal/dxt"
)

// testDXTTrace builds a small mixed-module trace: a shared POSIX file
// written by two ranks (one aligned, one not), a private MPIIO read, and
// an unknown-module event that derivation must tolerate.
func testDXTTrace() *dxt.Trace {
	return &dxt.Trace{
		NProcs: 4,
		Events: []dxt.Event{
			{Module: "X_POSIX", Rank: 0, File: "/scratch/shared.dat", Op: dxt.OpWrite, Seq: 0, Offset: 0, Length: 4096, Start: 0.010, End: 0.020},
			{Module: "X_POSIX", Rank: 0, File: "/scratch/shared.dat", Op: dxt.OpWrite, Seq: 1, Offset: 4096, Length: 4096, Start: 0.020, End: 0.025},
			{Module: "X_POSIX", Rank: 1, File: "/scratch/shared.dat", Op: dxt.OpWrite, Seq: 0, Offset: 9000, Length: 1000, Start: 0.015, End: 0.055},
			{Module: "X_MPIIO", Rank: 2, File: "/scratch/input.nc", Op: dxt.OpRead, Seq: 0, Offset: 0, Length: 1 << 20, Start: 0.001, End: 0.009},
			{Module: "X_FUTURE", Rank: 3, File: "/scratch/ignored", Op: dxt.OpWrite, Seq: 0, Offset: 0, Length: 10, Start: 0.001, End: 0.002},
		},
	}
}

func TestFromDXTDerivesCounters(t *testing.T) {
	l := FromDXT(testDXTTrace())

	if l.Job.NProcs != 4 {
		t.Errorf("NProcs = %d, want 4", l.Job.NProcs)
	}
	if l.Job.Metadata["mpi"] != "1" {
		t.Error("MPIIO events did not set the mpi metadata flag")
	}
	if l.DXT == nil {
		t.Fatal("derived log does not carry its event stream")
	}

	// The shared POSIX file: two ranks → one shared aggregate record.
	pos := l.Module(ModulePOSIX)
	if len(pos.Records) != 1 {
		t.Fatalf("POSIX records = %d, want 1 (the unknown module must not derive)", len(pos.Records))
	}
	r := pos.Records[0]
	if r.Rank != SharedRank {
		t.Errorf("multi-rank file derived rank %d, want shared (%d)", r.Rank, SharedRank)
	}
	if got := r.C("POSIX_WRITES"); got != 3 {
		t.Errorf("POSIX_WRITES = %d, want 3", got)
	}
	if got := r.C("POSIX_BYTES_WRITTEN"); got != 9192 {
		t.Errorf("POSIX_BYTES_WRITTEN = %d, want 9192", got)
	}
	// Offsets 0 and 4096 are aligned; 9000 is not.
	if got := r.C("POSIX_FILE_NOT_ALIGNED"); got != 1 {
		t.Errorf("POSIX_FILE_NOT_ALIGNED = %d, want 1", got)
	}
	if got := r.C("POSIX_FILE_ALIGNMENT"); got != DXTFileAlignment {
		t.Errorf("POSIX_FILE_ALIGNMENT = %d, want %d", got, DXTFileAlignment)
	}
	// Each contributing rank opened the shared file once.
	if got := r.C("POSIX_OPENS"); got != 2 {
		t.Errorf("POSIX_OPENS = %d, want 2 (one per touching rank)", got)
	}
	// Rank 1's single 40ms op dominates rank 0's 15ms busy time.
	if got := r.F("POSIX_F_SLOWEST_RANK_TIME"); got < 0.039 || got > 0.041 {
		t.Errorf("POSIX_F_SLOWEST_RANK_TIME = %v, want ~0.040", got)
	}
	if got := r.C("POSIX_SLOWEST_RANK_BYTES"); got != 1000 {
		t.Errorf("POSIX_SLOWEST_RANK_BYTES = %d, want rank 1's 1000", got)
	}

	// The MPIIO file: single rank, independent op counters.
	mp := l.Module(ModuleMPIIO)
	if len(mp.Records) != 1 {
		t.Fatalf("MPIIO records = %d, want 1", len(mp.Records))
	}
	mr := mp.Records[0]
	if mr.Rank != 2 {
		t.Errorf("single-rank MPIIO record rank = %d, want 2", mr.Rank)
	}
	if got := mr.C("MPIIO_INDEP_READS"); got != 1 {
		t.Errorf("MPIIO_INDEP_READS = %d, want 1", got)
	}

	// What DXT cannot see must stay zero — the modality contract.
	if got := r.C("POSIX_STATS"); got != 0 {
		t.Errorf("POSIX_STATS = %d, want 0 (metadata ops are invisible in DXT)", got)
	}
	if got := r.F("POSIX_F_META_TIME"); got != 0 {
		t.Errorf("POSIX_F_META_TIME = %v, want 0", got)
	}
}

// TestFromDXTRenderingCanonical: text round trip, in-memory derivation,
// and binary v3 round trip must all land on one content address.
func TestFromDXTRenderingCanonical(t *testing.T) {
	tr := testDXTTrace()
	l := FromDXT(tr)
	want, err := ContentDigest(l)
	if err != nil {
		t.Fatal(err)
	}

	// Text rendering round trip.
	var txt strings.Builder
	if err := dxt.WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	back, err := dxt.ParseText(strings.NewReader(txt.String()))
	if err != nil {
		t.Fatal(err)
	}
	dTxt, err := ContentDigest(FromDXT(back))
	if err != nil {
		t.Fatal(err)
	}
	if dTxt != want {
		t.Errorf("text-rendering digest %s != in-memory digest %s", dTxt, want)
	}

	// Binary container round trip (version 3 with the event section).
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.DXT == nil {
		t.Fatal("binary round trip dropped the DXT section")
	}
	if len(dec.DXT.Events) != len(l.DXT.Events) {
		t.Fatalf("binary round trip kept %d events, want %d", len(dec.DXT.Events), len(l.DXT.Events))
	}
	dBin, err := ContentDigest(dec)
	if err != nil {
		t.Fatal(err)
	}
	if dBin != want {
		t.Errorf("binary-rendering digest %s != in-memory digest %s", dBin, want)
	}
}

// TestFromDXTEventStreamAddressed: two traces whose derived counters
// coincide but whose event streams differ must get distinct content
// addresses — events are hashed, not just the counters derived from them.
func TestFromDXTEventStreamAddressed(t *testing.T) {
	a := &dxt.Trace{NProcs: 1, Events: []dxt.Event{
		{Module: "X_POSIX", Rank: 0, File: "/f", Op: dxt.OpWrite, Seq: 0, Offset: 0, Length: 4096, Start: 0.010, End: 0.020},
	}}
	// Same single aligned 4096-byte write, shifted in time: every derived
	// counter except the carried timestamps is identical.
	b := &dxt.Trace{NProcs: 1, Events: []dxt.Event{
		{Module: "X_POSIX", Rank: 0, File: "/f", Op: dxt.OpWrite, Seq: 0, Offset: 0, Length: 4096, Start: 0.030, End: 0.040},
	}}
	da, err := ContentDigest(FromDXT(a))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ContentDigest(FromDXT(b))
	if err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Error("different event streams collapsed to one content address")
	}
}

// TestFromDXTSequentialConsecutive: per-rank, per-direction offset
// tracking. Rank 0 writes 0→4096 (consecutive) then 10000 (sequential
// but not consecutive); a separate read at a lower offset must not
// disturb the write chain.
func TestFromDXTSequentialConsecutive(t *testing.T) {
	tr := &dxt.Trace{NProcs: 1, Events: []dxt.Event{
		{Module: "X_POSIX", Rank: 0, File: "/f", Op: dxt.OpWrite, Seq: 0, Offset: 0, Length: 4096, Start: 0.01, End: 0.02},
		{Module: "X_POSIX", Rank: 0, File: "/f", Op: dxt.OpRead, Seq: 1, Offset: 100, Length: 10, Start: 0.02, End: 0.03},
		{Module: "X_POSIX", Rank: 0, File: "/f", Op: dxt.OpWrite, Seq: 2, Offset: 4096, Length: 1000, Start: 0.03, End: 0.04},
		{Module: "X_POSIX", Rank: 0, File: "/f", Op: dxt.OpWrite, Seq: 3, Offset: 10000, Length: 100, Start: 0.04, End: 0.05},
	}}
	r := FromDXT(tr).Module(ModulePOSIX).Records[0]
	// First write has no predecessor; 4096 continues exactly at 0+4096
	// (sequential AND consecutive); 10000 jumps forward (sequential only).
	if got := r.C("POSIX_SEQ_WRITES"); got != 2 {
		t.Errorf("POSIX_SEQ_WRITES = %d, want 2", got)
	}
	if got := r.C("POSIX_CONSEC_WRITES"); got != 1 {
		t.Errorf("POSIX_CONSEC_WRITES = %d, want 1", got)
	}
}
