// Package drishti reimplements the Drishti baseline (Bez et al., PDSW
// 2022): a heuristic I/O-issue detector driven by fixed-threshold triggers
// over Darshan counters. Drishti is fast and deterministic, but — as the
// paper discusses — its thresholds are hard-coded, its explanations are
// canned messages tied to triggers, and it offers no interactive follow-up.
//
// This implementation carries 30 triggers (the count the paper attributes
// to Drishti) spanning informational observations and issue detections.
// Detections map onto the shared issue vocabulary so the evaluation harness
// can score them; several triggers intentionally do not distinguish cases
// the TraceBench labels separate (e.g. alignment is flagged for both
// directions at once), reproducing the precision limits of fixed heuristics.
package drishti

import (
	"fmt"
	"strings"

	"ioagent/internal/darshan"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

// Severity of a trigger hit.
type Severity int

// Severity levels (mirroring Drishti's OK/INFO/WARN/CRITICAL).
const (
	Info Severity = iota
	Warn
	Critical
)

// Hit is one fired trigger.
type Hit struct {
	TriggerID string
	Severity  Severity
	// Label is the issue class for Warn/Critical hits ("" for Info).
	Label issue.Label
	// Message is the canned explanation (with interpolated values).
	Message string
	// Recommendation is the canned remediation text.
	Recommendation string
}

// Result is a full Drishti analysis.
type Result struct {
	Hits []Hit
}

// analysis carries the precomputed aggregates the triggers consult.
type analysis struct {
	log    *darshan.Log
	posix  *darshan.ModuleData
	mpiio  *darshan.ModuleData
	stdio  *darshan.ModuleData
	lustre *darshan.ModuleData

	reads, writes           float64
	smallReads, smallWrites float64
	seqReads, seqWrites     float64
	consecReads, consecW    float64
	notAligned, memAligned  float64
	opens, stats, fsyncs    float64
	metaTime, dataTime      float64
	sharedFiles             int
	bytesRead, bytesWritten float64
}

func newAnalysis(log *darshan.Log) *analysis {
	a := &analysis{log: log}
	a.posix = log.Modules[darshan.ModulePOSIX]
	a.mpiio = log.Modules[darshan.ModuleMPIIO]
	a.stdio = log.Modules[darshan.ModuleSTDIO]
	a.lustre = log.Modules[darshan.ModuleLustre]
	if a.posix == nil {
		a.posix = &darshan.ModuleData{Module: darshan.ModulePOSIX}
	}
	p := a.posix
	a.reads = float64(p.SumC("POSIX_READS"))
	a.writes = float64(p.SumC("POSIX_WRITES"))
	for _, b := range []string{"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M"} {
		a.smallReads += float64(p.SumC("POSIX_SIZE_READ_" + b))
		a.smallWrites += float64(p.SumC("POSIX_SIZE_WRITE_" + b))
	}
	a.seqReads = float64(p.SumC("POSIX_SEQ_READS"))
	a.seqWrites = float64(p.SumC("POSIX_SEQ_WRITES"))
	a.consecReads = float64(p.SumC("POSIX_CONSEC_READS"))
	a.consecW = float64(p.SumC("POSIX_CONSEC_WRITES"))
	a.notAligned = float64(p.SumC("POSIX_FILE_NOT_ALIGNED"))
	a.memAligned = float64(p.SumC("POSIX_MEM_NOT_ALIGNED"))
	a.opens = float64(p.SumC("POSIX_OPENS"))
	a.stats = float64(p.SumC("POSIX_STATS"))
	a.fsyncs = float64(p.SumC("POSIX_FSYNCS"))
	a.metaTime = p.SumF("POSIX_F_META_TIME")
	a.dataTime = p.SumF("POSIX_F_READ_TIME") + p.SumF("POSIX_F_WRITE_TIME")
	a.bytesRead = float64(p.SumC("POSIX_BYTES_READ"))
	a.bytesWritten = float64(p.SumC("POSIX_BYTES_WRITTEN"))
	for _, r := range p.Records {
		if r.Rank == darshan.SharedRank && r.C("POSIX_BYTES_READ")+r.C("POSIX_BYTES_WRITTEN") > 0 {
			a.sharedFiles++
		}
	}
	return a
}

// trigger is one heuristic check.
type trigger struct {
	id    string
	check func(a *analysis) *Hit
}

func pct(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num / den
}

// Threshold constants, following Drishti's published trigger values.
const (
	thresholdSmall      = 0.10 // >10% of requests under 1 MB
	thresholdUnaligned  = 0.10
	thresholdMetaTime   = 0.30
	thresholdRandom     = 0.50 // sequential share below this => random
	thresholdImbalance  = 2.0
	thresholdManyFiles  = 128
	thresholdSmallBytes = 1 << 20
)

// triggers is the full 30-trigger table.
var triggers = []trigger{
	// --- Operation mix observations (informational) -----------------------
	{"T01-read-heavy", func(a *analysis) *Hit {
		if a.reads > 0 && a.reads > 4*maxf(a.writes, 1) {
			return &Hit{Severity: Info, Message: fmt.Sprintf("Application is read operation intensive (%.0f reads vs %.0f writes)", a.reads, a.writes)}
		}
		return nil
	}},
	{"T02-write-heavy", func(a *analysis) *Hit {
		if a.writes > 0 && a.writes > 4*maxf(a.reads, 1) {
			return &Hit{Severity: Info, Message: fmt.Sprintf("Application is write operation intensive (%.0f writes vs %.0f reads)", a.writes, a.reads)}
		}
		return nil
	}},
	{"T03-read-volume", func(a *analysis) *Hit {
		if a.bytesRead > 4*maxf(a.bytesWritten, 1) {
			return &Hit{Severity: Info, Message: fmt.Sprintf("Application is read size intensive (%.1f MB read, %.1f MB written)", a.bytesRead/1e6, a.bytesWritten/1e6)}
		}
		return nil
	}},
	{"T04-write-volume", func(a *analysis) *Hit {
		if a.bytesWritten > 4*maxf(a.bytesRead, 1) {
			return &Hit{Severity: Info, Message: fmt.Sprintf("Application is write size intensive (%.1f MB written, %.1f MB read)", a.bytesWritten/1e6, a.bytesRead/1e6)}
		}
		return nil
	}},

	// --- Small requests ----------------------------------------------------
	{"T05-small-reads", func(a *analysis) *Hit {
		if a.reads >= 16 && a.smallReads/a.reads > thresholdSmall {
			return &Hit{Severity: Warn, Label: issue.SmallReads,
				Message:        fmt.Sprintf("Application issues a high number (%.0f, i.e. %.0f%%) of small read requests (i.e., < 1MB) which represents a significant fraction of all read requests (POSIX_SIZE_READ_* counters)", a.smallReads, pct(a.smallReads, a.reads)),
				Recommendation: "Consider buffering read operations into larger and more contiguous ones"}
		}
		return nil
	}},
	{"T06-small-writes", func(a *analysis) *Hit {
		if a.writes >= 16 && a.smallWrites/a.writes > thresholdSmall {
			return &Hit{Severity: Warn, Label: issue.SmallWrites,
				Message:        fmt.Sprintf("Application issues a high number (%.0f, i.e. %.0f%%) of small write requests (i.e., < 1MB) which represents a significant fraction of all write requests (POSIX_SIZE_WRITE_* counters)", a.smallWrites, pct(a.smallWrites, a.writes)),
				Recommendation: "Consider buffering write operations into larger and more contiguous ones"}
		}
		return nil
	}},

	// --- Alignment ----------------------------------------------------------
	{"T07-file-unaligned", func(a *analysis) *Hit {
		ops := a.reads + a.writes
		if ops >= 16 && a.notAligned/ops > thresholdUnaligned {
			// Fixed heuristics cannot attribute the shared counter to a
			// direction, so both directions are flagged when both occur.
			return &Hit{Severity: Warn, Label: issue.MisalignedWrites,
				Message:        fmt.Sprintf("Application has a high number (%.0f%%) of I/O requests not aligned in file (POSIX_FILE_NOT_ALIGNED=%.0f)", pct(a.notAligned, ops), a.notAligned),
				Recommendation: "Consider aligning the requests to the file system block/stripe boundaries"}
		}
		return nil
	}},
	{"T08-file-unaligned-read", func(a *analysis) *Hit {
		ops := a.reads + a.writes
		if ops >= 16 && a.reads > 0 && a.notAligned/ops > thresholdUnaligned {
			return &Hit{Severity: Warn, Label: issue.MisalignedReads,
				Message:        fmt.Sprintf("Read requests share the unaligned access pattern (POSIX_FILE_NOT_ALIGNED=%.0f over %.0f operations)", a.notAligned, ops),
				Recommendation: "Consider aligning the requests to the file system block/stripe boundaries"}
		}
		return nil
	}},
	{"T09-mem-unaligned", func(a *analysis) *Hit {
		ops := a.reads + a.writes
		if ops >= 16 && a.memAligned/ops > 0.25 {
			return &Hit{Severity: Info,
				Message: fmt.Sprintf("Application has a high number (%.0f%%) of I/O requests not aligned in memory (POSIX_MEM_NOT_ALIGNED=%.0f)", pct(a.memAligned, ops), a.memAligned)}
		}
		return nil
	}},

	// --- Metadata -----------------------------------------------------------
	{"T10-meta-time", func(a *analysis) *Hit {
		if a.metaTime+a.dataTime > 0 && a.metaTime/(a.metaTime+a.dataTime) > thresholdMetaTime {
			return &Hit{Severity: Critical, Label: issue.HighMetadataLoad,
				Message:        fmt.Sprintf("Application spends %.0f%% of its I/O time in metadata operations (POSIX_F_META_TIME=%.2fs)", pct(a.metaTime, a.metaTime+a.dataTime), a.metaTime),
				Recommendation: "Consider aggregating small files into container formats to reduce metadata operations"}
		}
		return nil
	}},
	{"T11-many-opens", func(a *analysis) *Hit {
		n := float64(a.log.Job.NProcs)
		if n < 1 {
			n = 1
		}
		if a.opens/n > thresholdManyFiles && a.metaTime/(maxf(a.metaTime+a.dataTime, 1e-9)) > 0.10 {
			return &Hit{Severity: Warn, Label: issue.HighMetadataLoad,
				Message:        fmt.Sprintf("Application issues %.0f open operations per process (POSIX_OPENS=%.0f)", a.opens/n, a.opens),
				Recommendation: "Consider opening files once and reusing the handles"}
		}
		return nil
	}},
	{"T12-many-stats", func(a *analysis) *Hit {
		n := float64(a.log.Job.NProcs)
		if n < 1 {
			n = 1
		}
		if a.stats/n > thresholdManyFiles {
			return &Hit{Severity: Warn, Label: issue.HighMetadataLoad,
				Message:        fmt.Sprintf("Application issues %.0f stat operations per process (POSIX_STATS=%.0f)", a.stats/n, a.stats),
				Recommendation: "Consider caching file attributes instead of repeatedly calling stat"}
		}
		return nil
	}},
	{"T13-fsyncs", func(a *analysis) *Hit {
		if a.fsyncs > 64 {
			return &Hit{Severity: Info,
				Message: fmt.Sprintf("Application issues %.0f fsync operations (POSIX_FSYNCS)", a.fsyncs)}
		}
		return nil
	}},

	// --- Access order --------------------------------------------------------
	{"T14-random-reads", func(a *analysis) *Hit {
		if a.reads >= 16 && a.seqReads/a.reads < thresholdRandom {
			return &Hit{Severity: Warn, Label: issue.RandomReads,
				Message:        fmt.Sprintf("Application mostly uses non-sequential access patterns for reads (%.0f%% sequential, POSIX_SEQ_READS=%.0f)", pct(a.seqReads, a.reads), a.seqReads),
				Recommendation: "Consider reordering read requests or using collective I/O"}
		}
		return nil
	}},
	{"T15-random-writes", func(a *analysis) *Hit {
		if a.writes >= 16 && a.seqWrites/a.writes < thresholdRandom {
			return &Hit{Severity: Warn, Label: issue.RandomWrites,
				Message:        fmt.Sprintf("Application mostly uses non-sequential access patterns for writes (%.0f%% sequential, POSIX_SEQ_WRITES=%.0f)", pct(a.seqWrites, a.writes), a.seqWrites),
				Recommendation: "Consider reordering write requests or using collective I/O"}
		}
		return nil
	}},
	{"T16-seq-reads-ok", func(a *analysis) *Hit {
		if a.reads >= 16 && a.seqReads/a.reads >= 0.9 {
			return &Hit{Severity: Info, Message: fmt.Sprintf("Application has a high number (%.0f%%) of sequential read operations", pct(a.seqReads, a.reads))}
		}
		return nil
	}},
	{"T17-seq-writes-ok", func(a *analysis) *Hit {
		if a.writes >= 16 && a.seqWrites/a.writes >= 0.9 {
			return &Hit{Severity: Info, Message: fmt.Sprintf("Application has a high number (%.0f%%) of sequential write operations", pct(a.seqWrites, a.writes))}
		}
		return nil
	}},

	// --- Shared files and rank balance ---------------------------------------
	{"T18-shared-files", func(a *analysis) *Hit {
		if a.sharedFiles > 0 && a.log.Job.NProcs > 1 {
			return &Hit{Severity: Warn, Label: issue.SharedFileAccess,
				Message:        fmt.Sprintf("Application uses shared files (%d files accessed by all %d ranks)", a.sharedFiles, a.log.Job.NProcs),
				Recommendation: "Consider using collective I/O or tuning stripe settings for shared files"}
		}
		return nil
	}},
	{"T19-rank-time-imbalance", func(a *analysis) *Hit {
		n := float64(a.log.Job.NProcs)
		if n <= 1 || a.dataTime == 0 {
			return nil
		}
		// Skip when collective aggregation explains the skew.
		if a.mpiio != nil && a.mpiio.SumC("MPIIO_COLL_WRITES")+a.mpiio.SumC("MPIIO_COLL_READS") > 0 {
			return nil
		}
		var slow float64
		for _, r := range a.posix.Records {
			if t := r.F("POSIX_F_SLOWEST_RANK_TIME"); t > slow {
				slow = t
			}
		}
		if slow > thresholdImbalance*(a.dataTime/n) {
			return &Hit{Severity: Warn, Label: issue.RankImbalance,
				Message:        fmt.Sprintf("Application has rank load imbalance: the slowest rank spends %.1fx the mean I/O time (POSIX_F_SLOWEST_RANK_TIME=%.2fs)", slow/(a.dataTime/n), slow),
				Recommendation: "Consider rebalancing the I/O workload across ranks"}
		}
		return nil
	}},
	{"T20-rank-byte-imbalance", func(a *analysis) *Hit {
		if a.log.Job.NProcs <= 1 {
			return nil
		}
		for _, r := range a.posix.Records {
			fast := float64(r.C("POSIX_FASTEST_RANK_BYTES"))
			slow := float64(r.C("POSIX_SLOWEST_RANK_BYTES"))
			if fast > 0 && slow/fast > 4 {
				return &Hit{Severity: Warn, Label: issue.RankImbalance,
					Message:        fmt.Sprintf("Application has data imbalance: rank byte volumes differ by %.1fx on %s", slow/fast, r.Name),
					Recommendation: "Consider distributing data evenly across ranks"}
			}
		}
		return nil
	}},

	// --- MPI-IO usage ----------------------------------------------------------
	{"T21-no-coll-writes", func(a *analysis) *Hit {
		if a.mpiio == nil || a.log.Job.NProcs <= 1 || a.sharedFiles == 0 {
			return nil
		}
		iw := a.mpiio.SumC("MPIIO_INDEP_WRITES")
		cw := a.mpiio.SumC("MPIIO_COLL_WRITES")
		if cw == 0 && iw > 0 {
			return &Hit{Severity: Critical, Label: issue.NoCollectiveWrite,
				Message:        fmt.Sprintf("Application uses MPI-IO but writes are never collective (MPIIO_COLL_WRITES=0, MPIIO_INDEP_WRITES=%d)", iw),
				Recommendation: "Consider using collective write operations (e.g. MPI_File_write_all) and enabling collective buffering"}
		}
		return nil
	}},
	{"T22-no-coll-reads", func(a *analysis) *Hit {
		if a.mpiio == nil || a.log.Job.NProcs <= 1 || a.sharedFiles == 0 {
			return nil
		}
		ir := a.mpiio.SumC("MPIIO_INDEP_READS")
		cr := a.mpiio.SumC("MPIIO_COLL_READS")
		if cr == 0 && ir > 0 {
			return &Hit{Severity: Critical, Label: issue.NoCollectiveRead,
				Message:        fmt.Sprintf("Application uses MPI-IO but reads are never collective (MPIIO_COLL_READS=0, MPIIO_INDEP_READS=%d)", ir),
				Recommendation: "Consider using collective read operations (e.g. MPI_File_read_all)"}
		}
		return nil
	}},
	{"T23-mpi-bypass-write", func(a *analysis) *Hit {
		// MPI job writing substantial data exclusively through POSIX.
		if a.log.Job.Metadata["mpi"] != "1" || a.log.Job.NProcs <= 1 ||
			a.bytesWritten < 8<<20 {
			return nil
		}
		if a.mpiio == nil || a.mpiio.SumC("MPIIO_BYTES_WRITTEN") == 0 {
			return &Hit{Severity: Critical, Label: issue.NoCollectiveWrite,
				Message:        fmt.Sprintf("Application is an MPI job but writes %.1f MB directly through POSIX, bypassing MPI-IO optimizations entirely", a.bytesWritten/1e6),
				Recommendation: "Consider routing writes through MPI-IO collective operations"}
		}
		return nil
	}},
	{"T24-mpi-bypass-read", func(a *analysis) *Hit {
		if a.log.Job.Metadata["mpi"] != "1" || a.log.Job.NProcs <= 1 ||
			a.bytesRead < 8<<20 {
			return nil
		}
		if a.mpiio == nil || a.mpiio.SumC("MPIIO_BYTES_READ") == 0 {
			return &Hit{Severity: Critical, Label: issue.NoCollectiveRead,
				Message:        fmt.Sprintf("Application is an MPI job but reads %.1f MB directly through POSIX, bypassing MPI-IO optimizations entirely", a.bytesRead/1e6),
				Recommendation: "Consider routing reads through MPI-IO collective operations"}
		}
		return nil
	}},

	// --- Striping / OST usage ----------------------------------------------------
	{"T25-narrow-stripe", func(a *analysis) *Hit {
		if a.lustre == nil {
			return nil
		}
		for _, r := range a.lustre.Records {
			width := r.C("LUSTRE_STRIPE_WIDTH")
			ssize := r.C("LUSTRE_STRIPE_SIZE")
			extent := int64(0)
			for _, p := range a.posix.Records {
				if p.Name == r.Name {
					if e := p.C("POSIX_MAX_BYTE_WRITTEN") + 1; e > extent {
						extent = e
					}
					if e := p.C("POSIX_MAX_BYTE_READ") + 1; e > extent {
						extent = e
					}
				}
			}
			if width <= 1 && ssize > 0 && extent > 4*ssize {
				return &Hit{Severity: Warn, Label: issue.ServerImbalance,
					Message:        fmt.Sprintf("File %s spans %.1f MB but uses a stripe count of %d (LUSTRE_STRIPE_WIDTH), concentrating load on one OST", r.Name, float64(extent)/1e6, width),
					Recommendation: "Consider increasing the stripe count with lfs setstripe -c"}
			}
		}
		return nil
	}},
	{"T26-ost-coverage", func(a *analysis) *Hit {
		if a.lustre == nil {
			return nil
		}
		used := map[int64]bool{}
		var osts int64
		for _, r := range a.lustre.Records {
			osts = r.C("LUSTRE_OSTS")
			for i := 0; i < int(r.C("LUSTRE_STRIPE_WIDTH")) && i < darshan.MaxLustreOSTs; i++ {
				used[r.C(fmt.Sprintf("LUSTRE_OST_ID_%d", i))] = true
			}
		}
		if osts >= 8 && len(used) > 0 && float64(len(used))/float64(osts) < 0.25 &&
			a.bytesRead+a.bytesWritten > 64<<20 {
			return &Hit{Severity: Warn, Label: issue.ServerImbalance,
				Message:        fmt.Sprintf("Application uses only %d of %d available OSTs (LUSTRE_OST_ID_*), underutilizing the storage system", len(used), osts),
				Recommendation: "Consider spreading files across more OSTs via wider striping"}
		}
		return nil
	}},
	{"T27-stripe-info", func(a *analysis) *Hit {
		if a.lustre == nil || len(a.lustre.Records) == 0 {
			return nil
		}
		r := a.lustre.Records[0]
		return &Hit{Severity: Info,
			Message: fmt.Sprintf("Lustre striping in effect: LUSTRE_STRIPE_WIDTH=%d, LUSTRE_STRIPE_SIZE=%d", r.C("LUSTRE_STRIPE_WIDTH"), r.C("LUSTRE_STRIPE_SIZE"))}
	}},

	// --- Misc -----------------------------------------------------------------
	{"T28-rw-switches", func(a *analysis) *Hit {
		sw := float64(a.posix.SumC("POSIX_RW_SWITCHES"))
		if ops := a.reads + a.writes; ops >= 16 && sw/ops > 0.2 {
			return &Hit{Severity: Info,
				Message: fmt.Sprintf("Application alternates between reads and writes frequently (POSIX_RW_SWITCHES=%.0f)", sw)}
		}
		return nil
	}},
	{"T29-stdio-volume", func(a *analysis) *Hit {
		if a.stdio == nil {
			return nil
		}
		sb := float64(a.stdio.SumC("STDIO_BYTES_READ") + a.stdio.SumC("STDIO_BYTES_WRITTEN"))
		total := sb + a.bytesRead + a.bytesWritten
		if total > 0 && sb/total > 0.3 && sb > 8<<20 {
			return &Hit{Severity: Info,
				Message: fmt.Sprintf("A large share (%.0f%%) of I/O volume flows through STDIO (STDIO_BYTES_*)", 100*sb/total)}
		}
		return nil
	}},
	{"T30-tiny-job", func(a *analysis) *Hit {
		if a.bytesRead+a.bytesWritten < thresholdSmallBytes && a.reads+a.writes > 0 {
			return &Hit{Severity: Info,
				Message: fmt.Sprintf("Application moves very little data overall (%.1f KB)", (a.bytesRead+a.bytesWritten)/1024)}
		}
		return nil
	}},
}

// NumTriggers is the size of the trigger table (the paper credits Drishti
// with 30 triggers).
var NumTriggers = len(triggers)

// Analyze runs every trigger over the log.
func Analyze(log *darshan.Log) *Result {
	a := newAnalysis(log)
	res := &Result{}
	for i, t := range triggers {
		if hit := t.check(a); hit != nil {
			hit.TriggerID = t.id
			_ = i
			res.Hits = append(res.Hits, *hit)
		}
	}
	return res
}

// Labels returns the issue labels claimed by Warn/Critical hits.
func (r *Result) Labels() issue.Set {
	s := make(issue.Set)
	for _, h := range r.Hits {
		if h.Severity >= Warn && h.Label != "" {
			s[h.Label] = true
		}
	}
	return s
}

// Format renders the analysis in the shared report layout so the judge and
// merge tooling can parse it. Messages remain Drishti's canned text.
func (r *Result) Format() string {
	rep := &llm.Report{Preamble: "Drishti heuristic trigger analysis."}
	seen := make(map[issue.Label]bool)
	for _, h := range r.Hits {
		if h.Severity >= Warn && h.Label != "" {
			if seen[h.Label] {
				continue
			}
			seen[h.Label] = true
			rep.Findings = append(rep.Findings, llm.Finding{
				Label:          h.Label,
				Evidence:       fmt.Sprintf("[%s] %s", h.TriggerID, h.Message),
				Recommendation: h.Recommendation,
			})
		}
	}
	for _, h := range r.Hits {
		if h.Severity == Info {
			rep.Notes = append(rep.Notes, fmt.Sprintf("[%s] %s", h.TriggerID, h.Message))
		}
	}
	return rep.Format()
}

// Summary lists fired triggers one per line (the classic CLI view).
func (r *Result) Summary() string {
	var b strings.Builder
	for _, h := range r.Hits {
		sev := map[Severity]string{Info: "INFO", Warn: "WARN", Critical: "CRIT"}[h.Severity]
		fmt.Fprintf(&b, "%-4s %-24s %s\n", sev, h.TriggerID, h.Message)
	}
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
