package drishti

import (
	"fmt"
	"strings"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
)

// fired returns the set of trigger ids that fired on the log.
func fired(log *darshan.Log) map[string]bool {
	out := map[string]bool{}
	for _, h := range Analyze(log).Hits {
		out[h.TriggerID] = true
	}
	return out
}

func TestOperationMixInfoTriggers(t *testing.T) {
	// Read-heavy job.
	s := iosim.New(iosim.Config{Seed: 21, NProcs: 1})
	f := s.Open("/scratch/r.dat", 0, iosim.POSIX, nil)
	for i := int64(0); i < 64; i++ {
		f.ReadAt(0, i*(1<<20), 1<<20)
	}
	got := fired(s.Finalize())
	if !got["T01-read-heavy"] || !got["T03-read-volume"] {
		t.Errorf("read-heavy triggers missing: %v", got)
	}
	if got["T02-write-heavy"] {
		t.Error("write-heavy fired on a read-only job")
	}
}

func TestSequentialInfoTriggers(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 22, NProcs: 1})
	f := s.Open("/scratch/s.dat", 0, iosim.POSIX, nil)
	for i := int64(0); i < 64; i++ {
		f.WriteAt(0, i*(2<<20), 2<<20)
	}
	got := fired(s.Finalize())
	if !got["T17-seq-writes-ok"] {
		t.Errorf("sequential-writes info trigger missing: %v", got)
	}
	if got["T15-random-writes"] {
		t.Error("random-writes fired on a sequential job")
	}
}

func TestRWSwitchTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 23, NProcs: 1})
	f := s.Open("/scratch/rw.dat", 0, iosim.POSIX, nil)
	for i := int64(0); i < 32; i++ {
		f.WriteAt(0, i*(2<<20), 1<<20)
		f.ReadAt(0, i*(2<<20), 1<<20)
	}
	if got := fired(s.Finalize()); !got["T28-rw-switches"] {
		t.Errorf("rw-switch trigger missing: %v", got)
	}
}

func TestStdioVolumeTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 24, NProcs: 1})
	f := s.Open("/scratch/stdio.dat", 0, iosim.STDIO, nil)
	for i := int64(0); i < 16; i++ {
		f.WriteAt(0, i*(1<<20), 1<<20)
	}
	if got := fired(s.Finalize()); !got["T29-stdio-volume"] {
		t.Errorf("stdio-volume trigger missing: %v", got)
	}
}

func TestTinyJobTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 25, NProcs: 1})
	f := s.Open("/scratch/tiny.dat", 0, iosim.POSIX, nil)
	f.WriteAt(0, 0, 4096)
	if got := fired(s.Finalize()); !got["T30-tiny-job"] {
		t.Errorf("tiny-job trigger missing: %v", got)
	}
}

func TestStripeInfoTriggerAlwaysReportsLayout(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 26, NProcs: 1})
	lay := &iosim.Layout{StripeSize: 2 << 20, StripeWidth: 4}
	f := s.Open("/scratch/lay.dat", 0, iosim.POSIX, lay)
	f.WriteAt(0, 0, 1<<20)
	res := Analyze(s.Finalize())
	found := false
	for _, h := range res.Hits {
		if h.TriggerID == "T27-stripe-info" && strings.Contains(h.Message, "LUSTRE_STRIPE_WIDTH=4") {
			found = true
		}
	}
	if !found {
		t.Errorf("stripe info trigger missing or wrong:\n%s", res.Summary())
	}
}

func TestByteImbalanceTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 27, NProcs: 4, UsesMPI: true})
	f := s.OpenShared("/scratch/imb.dat", iosim.POSIX, false, nil)
	// Rank 0 writes 8x the volume of the others.
	for i := int64(0); i < 64; i++ {
		f.WriteAt(0, i*(1<<20), 1<<20)
	}
	for rank := 1; rank < 4; rank++ {
		for i := int64(0); i < 8; i++ {
			f.WriteAt(rank, (64+int64(rank)*8+i)*(1<<20), 1<<20)
		}
	}
	if got := fired(s.Finalize()); !got["T20-rank-byte-imbalance"] && !got["T19-rank-time-imbalance"] {
		t.Errorf("imbalance triggers missing: %v", got)
	}
}

func TestFsyncTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 28, NProcs: 1})
	f := s.Open("/scratch/sync.dat", 0, iosim.POSIX, nil)
	for i := int64(0); i < 100; i++ {
		f.WriteAt(0, i*8192, 8192)
		f.Fsync(0)
	}
	if got := fired(s.Finalize()); !got["T13-fsyncs"] {
		t.Errorf("fsync trigger missing: %v", got)
	}
}

// TestAllTriggersReachable: across the TraceBench-style corpus plus the
// focused workloads above, most of the 30 triggers must be exercisable —
// dead triggers indicate drift between the table and the simulator.
func TestMostTriggersReachable(t *testing.T) {
	seen := map[string]bool{}
	collect := func(log *darshan.Log) {
		for id := range fired(log) {
			seen[id] = true
		}
	}
	// Focused micro-workloads.
	builders := []func() *darshan.Log{
		func() *darshan.Log { // small unaligned shared rw, no MPI
			s := iosim.New(iosim.Config{Seed: 31, NProcs: 4})
			f := s.OpenShared("/scratch/m1.dat", iosim.POSIX, false, nil)
			for rank := 0; rank < 4; rank++ {
				for i := int64(0); i < 128; i++ {
					off := (i*4+int64(rank))*47008 + 13
					f.WriteAt(rank, off, 47008)
					f.ReadAt(rank, off, 47008)
				}
			}
			return s.Finalize()
		},
		func() *darshan.Log { // metadata storm
			s := iosim.New(iosim.Config{Seed: 32, NProcs: 2})
			for rank := 0; rank < 2; rank++ {
				for i := 0; i < 200; i++ {
					f := s.Open(fmt.Sprintf("/scratch/meta/%d.%d", rank, i), rank, iosim.POSIX, nil)
					f.Stat(rank)
					f.Stat(rank)
					f.Close(rank)
				}
			}
			return s.Finalize()
		},
		func() *darshan.Log { // MPI-indep shared, random large
			s := iosim.New(iosim.Config{Seed: 33, NProcs: 4, UsesMPI: true})
			f := s.OpenShared("/scratch/m3.dat", iosim.MPIIndep, false, nil)
			iosim.RandomReads(s, f, 32, 1<<20, 64<<20)
			iosim.RandomWrites(s, f, 32, 1<<20, 64<<20)
			return s.Finalize()
		},
	}
	for _, build := range builders {
		collect(build())
	}
	for seed := int64(41); seed < 49; seed++ {
		log, _, _, _ := func() (*darshan.Log, int64, int64, *iosim.Sim) {
			s := iosim.New(iosim.Config{Seed: seed, NProcs: 4, UsesMPI: seed%2 == 0})
			f := s.OpenShared("/scratch/x.dat", iosim.POSIX, false, nil)
			for rank := 0; rank < 4; rank++ {
				for i := int64(0); i < 64; i++ {
					f.WriteAt(rank, (int64(rank)*64+i)*65536, 65536)
				}
			}
			return s.Finalize(), 0, 0, s
		}()
		collect(log)
	}
	if len(seen) < 14 {
		t.Errorf("only %d of %d triggers reachable in the micro-corpus: %v", len(seen), NumTriggers, seen)
	}
}
