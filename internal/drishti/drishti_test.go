package drishti

import (
	"strings"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
)

func TestThirtyTriggers(t *testing.T) {
	if NumTriggers != 30 {
		t.Errorf("trigger table has %d entries, want 30 (paper)", NumTriggers)
	}
}

func smallWriteLog() *darshan.Log {
	s := iosim.New(iosim.Config{Seed: 1, NProcs: 4, UsesMPI: true})
	f := s.OpenShared("/scratch/small.dat", iosim.MPIIndep, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 200; i++ {
			f.WriteAt(rank, (int64(rank)*200+i)*4096, 4096)
		}
	}
	return s.Finalize()
}

func TestSmallWriteTrigger(t *testing.T) {
	res := Analyze(smallWriteLog())
	labels := res.Labels()
	if !labels[issue.SmallWrites] {
		t.Errorf("small-write trigger did not fire; hits:\n%s", res.Summary())
	}
	if !labels[issue.SharedFileAccess] {
		t.Errorf("shared-file trigger did not fire")
	}
	if !labels[issue.NoCollectiveWrite] {
		t.Errorf("no-collective trigger did not fire")
	}
}

func TestRandomAccessTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 2, NProcs: 2, UsesMPI: true})
	f := s.OpenShared("/scratch/rand.dat", iosim.POSIX, false, nil)
	iosim.RandomWrites(s, f, 100, 4096, 64<<20)
	res := Analyze(s.Finalize())
	if !res.Labels()[issue.RandomWrites] {
		t.Errorf("random-write trigger did not fire:\n%s", res.Summary())
	}
}

func TestMetadataTrigger(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 3, NProcs: 2, UsesMPI: true})
	iosim.MetadataStorm(s, "/scratch/meta", 200, 3)
	res := Analyze(s.Finalize())
	if !res.Labels()[issue.HighMetadataLoad] {
		t.Errorf("metadata trigger did not fire:\n%s", res.Summary())
	}
}

func TestCleanTraceMostlyQuiet(t *testing.T) {
	// Collective, large, aligned, wide-striped I/O should raise no
	// critical issues (shared-file access is informational reality).
	s := iosim.New(iosim.Config{Seed: 4, NProcs: 8, UsesMPI: true})
	lay := &iosim.Layout{StripeSize: 4 << 20, StripeWidth: 8}
	iosim.WriteShared(s, "/scratch/ckpt.dat", iosim.MPIColl, lay, 256<<20, 4<<20)
	res := Analyze(s.Finalize())
	labels := res.Labels()
	for _, l := range []issue.Label{issue.SmallWrites, issue.RandomWrites, issue.NoCollectiveWrite, issue.ServerImbalance} {
		if labels[l] {
			t.Errorf("clean trace wrongly flagged %q:\n%s", l, res.Summary())
		}
	}
}

func TestDrishtiHasNoTriggerForSomeLabels(t *testing.T) {
	// The fixed trigger set cannot express every TraceBench label; these
	// gaps are part of why heuristics trail IOAgent on accuracy.
	s := iosim.New(iosim.Config{Seed: 5, NProcs: 4, UsesMPI: false})
	iosim.FilePerProcessWrite(s, "/scratch/nompi.%d.dat", iosim.POSIX, nil, 32<<20, 4<<20)
	res := Analyze(s.Finalize())
	if res.Labels()[issue.MultiProcessNoMPI] {
		t.Error("Drishti has no multi-process-without-MPI trigger; it must not claim that label")
	}
}

func TestFormatParsesAsReport(t *testing.T) {
	res := Analyze(smallWriteLog())
	text := res.Format()
	rep := llm.ParseReport(text)
	if len(rep.Findings) == 0 {
		t.Fatal("formatted Drishti output has no parseable findings")
	}
	for _, f := range rep.Findings {
		if f.Evidence == "" {
			t.Errorf("finding %q lacks evidence text", f.Label)
		}
		if len(f.Refs) != 0 {
			t.Errorf("Drishti must not cite references (fixed messages only)")
		}
	}
	if !strings.Contains(text, "[T") {
		t.Error("trigger ids missing from output")
	}
}

func TestDeterministic(t *testing.T) {
	log := smallWriteLog()
	if Analyze(log).Format() != Analyze(log).Format() {
		t.Error("Drishti must be deterministic")
	}
}
