// Quickstart: generate a problematic I/O trace with the workload simulator,
// diagnose it with IOAgent, and print the referenced report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

func main() {
	// 1. Simulate an MPI application with a classic anti-pattern: eight
	//    ranks write a shared file through independent MPI-IO in 32 KiB
	//    pieces, on the file system's default 1x1MiB striping.
	sim := iosim.New(iosim.Config{Seed: 1, NProcs: 8, UsesMPI: true, Exe: "/apps/demo/app.x"})
	layout := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
	f := sim.OpenShared("/scratch/demo/output.dat", iosim.MPIIndep, false, layout)
	for rank := 0; rank < sim.NProcs(); rank++ {
		base := int64(rank) * (8 << 20)
		for i := int64(0); i < 256; i++ {
			f.WriteAt(rank, base+i*32768, 32768)
		}
	}
	f.Close()
	trace := sim.Finalize()

	// 2. Diagnose with the full IOAgent pipeline (module pre-processing,
	//    RAG over the 66-publication corpus, self-reflection filtering,
	//    tree-based merge).
	agent := ioagent.New(llm.NewSim(), ioagent.Options{})
	result, err := agent.Diagnose(trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(result.Text)
	usage, cost, calls := agent.Stats()
	fmt.Printf("pipeline: %d fragments, %d LLM calls, %d tokens, $%.4f\n",
		len(result.Fragments), calls, usage.Total(), cost)
}
