// Extended-tracing demo (the paper's future-work direction): the same
// straggler workload is captured both as aggregate Darshan counters and as
// a fine-grained DXT event stream. The aggregate diagnosis flags rank load
// imbalance; the DXT timeline pinpoints *which* rank, *when*, and the burst
// structure around it — the temporal evidence aggregate counters blur.
//
//	go run ./examples/dxt
package main

import (
	"fmt"
	"log"
	"os"

	"ioagent/internal/dxt"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

func main() {
	skew := []float64{1, 1, 1, 1, 1, 1, 5, 1}
	sim := iosim.New(iosim.Config{
		Seed: 31, NProcs: 8, UsesMPI: true, EnableDXT: true,
		Exe: "/apps/sim/checkpointer.x", RankSkew: skew,
	})
	lay := &iosim.Layout{StripeSize: 4 << 20, StripeWidth: 4}
	for rank := 0; rank < 8; rank++ {
		f := sim.Open(fmt.Sprintf("/scratch/ckpt/part.%d", rank), rank, iosim.POSIX, lay)
		for i := int64(0); i < 24; i++ {
			f.ReadAt(rank, i*(4<<20), 4<<20)
		}
		f.Close(rank)
	}
	events := sim.DXT()
	trace := sim.Finalize()

	// Aggregate-counter diagnosis.
	agent := ioagent.New(llm.NewSim(), ioagent.Options{})
	res, err := agent.Diagnose(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== aggregate (Darshan) diagnosis ===")
	fmt.Println(res.Text)

	// Fine-grained temporal evidence.
	fmt.Println("=== DXT temporal evidence ===")
	fmt.Print(events.Summary())
	rank, ratio := events.StragglerRank()
	fmt.Printf("\nper-rank timelines (straggler: rank %d at %.1fx mean):\n", rank, ratio)
	for _, tl := range events.Timelines() {
		fmt.Printf("  rank %d: %4d ops, %6.1f MiB, busy %6.3fs, active [%.3f, %.3f]s\n",
			tl.Rank, tl.Ops, float64(tl.Bytes)/(1<<20), tl.BusyTime, tl.First, tl.Last)
	}

	// The DXT stream round-trips through the darshan-dxt-parser format.
	fmt.Println("\nfirst DXT records (darshan-dxt-parser format):")
	short := &dxt.Trace{NProcs: events.NProcs, Events: events.Events[:4]}
	if err := dxt.WriteText(os.Stdout, short); err != nil {
		log.Fatal(err)
	}
}
