// Fleet: batch-diagnose a stream of simulated traces through the
// concurrent worker pool, against a deliberately slow and flaky model
// backend, and watch the serving-layer mechanisms earn their keep: worker
// concurrency overlaps API latency, retries absorb transient backend
// errors, and the content-addressed cache makes the second submission of
// every trace free. Act three checkpoints the pool to disk and replays
// it into a brand-new pool — the iofleetd -state-dir restart path — so the
// third batch is free too, across a simulated process death. Act four
// shows priority lanes; act five boots a miniature two-node cluster
// behind iofleet-router's dispatch layer, shards a batch by consistent
// hash, then kills a node and watches the ring successor absorb its work.
//
//	go run ./examples/fleet
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/router"
	"ioagent/internal/fleet/server"
	"ioagent/internal/fleet/store"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

// makeTrace simulates one small-write-bound MPI job; each seed yields a
// distinct trace and therefore a distinct cache digest.
func makeTrace(seed int64) *darshan.Log {
	sim := iosim.New(iosim.Config{Seed: seed, NProcs: 4, UsesMPI: true, Exe: "/apps/demo/app.x"})
	f := sim.OpenShared(fmt.Sprintf("/scratch/run%03d/out.dat", seed), iosim.POSIX, false, nil)
	for rank := 0; rank < sim.NProcs(); rank++ {
		base := int64(rank) * (1 << 20)
		for i := int64(0); i < 16; i++ {
			f.WriteAt(rank, base+i*16384, 16384)
		}
	}
	f.Close()
	return sim.Finalize()
}

func main() {
	// A realistic backend: every model call pays a 2ms network round
	// trip, and one call in a thousand fails with a transient overload
	// error. A diagnosis makes ~180 calls, so most jobs see at least one
	// failure window across the batch; the retry budget absorbs them.
	backend := llm.Flaky(llm.WithLatency(llm.NewSim(), 2*time.Millisecond), 1000)

	// Persist fleet state the way iofleetd -state-dir does: every
	// accepted job is write-ahead journaled, and checkpoints snapshot the
	// result cache.
	stateDir, err := os.MkdirTemp("", "fleet-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	st, err := store.Open(stateDir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pool := fleet.New(backend, fleet.Config{
		Workers: 8, MaxAttempts: 6,
		OnJobEvent:    st.OnJobEvent,
		OnCacheInsert: st.CacheChanged,
		OnCacheEvict:  st.CacheChanged,
	})
	defer pool.Close()

	const traces = 16
	start := time.Now()
	for i := 0; i < traces; i++ {
		if _, err := pool.Submit(makeTrace(int64(i + 1))); err != nil {
			log.Fatal(err)
		}
	}
	pool.Wait()
	firstBatch := time.Since(start)

	// Resubmit the identical batch: every job completes instantly from
	// the result cache.
	start = time.Now()
	for i := 0; i < traces; i++ {
		if _, err := pool.Submit(makeTrace(int64(i + 1))); err != nil {
			log.Fatal(err)
		}
	}
	pool.Wait()
	secondBatch := time.Since(start)

	m := pool.Metrics()
	fmt.Printf("first batch  (%d traces, %d workers): %v\n", traces, m.Workers, firstBatch.Round(time.Millisecond))
	fmt.Printf("second batch (all cached):            %v\n", secondBatch.Round(time.Millisecond))
	fmt.Printf("jobs done %d / failed %d, retries absorbed %d\n", m.Done, m.Failed, m.Retries)
	fmt.Printf("cache: %d hits, %d misses (hit rate %.0f%%)\n", m.CacheHits, m.CacheMisses, 100*m.HitRate)
	fmt.Printf("latency: p50 %v, p95 %v\n", m.LatencyP50.Round(time.Millisecond), m.LatencyP95.Round(time.Millisecond))

	usage, cost, calls := pool.Agent().Stats()
	fmt.Printf("cost: %d LLM calls, %d tokens, $%.4f (second batch added $0)\n", calls, usage.Total(), cost)

	// Act three: checkpoint, "crash", and recover into a fresh pool — the
	// restart path a production redeploy takes. The snapshot carries every
	// diagnosis across the process boundary, so the third batch is served
	// entirely from disk-restored cache at zero model cost.
	if err := st.FinalCheckpoint(pool); err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}

	st2, err := store.Open(stateDir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	pool2 := fleet.New(backend, fleet.Config{
		Workers: 8, MaxAttempts: 6,
		OnJobEvent:    st2.OnJobEvent,
		OnCacheInsert: st2.CacheChanged,
		OnCacheEvict:  st2.CacheChanged,
	})
	defer pool2.Close()
	restored, resubmitted, err := st2.Replay(pool2)
	if err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	for i := 0; i < traces; i++ {
		if _, err := pool2.Submit(makeTrace(int64(i + 1))); err != nil {
			log.Fatal(err)
		}
	}
	pool2.Wait()
	thirdBatch := time.Since(start)

	m2 := pool2.Metrics()
	_, cost2, calls2 := pool2.Agent().Stats()
	fmt.Printf("\nrestart: %d diagnoses restored from %s, %d unfinished jobs replayed\n", restored, stateDir, resubmitted)
	fmt.Printf("third batch (new process, disk-warm cache): %v, %d/%d cache hits, %d LLM calls, $%.4f\n",
		thirdBatch.Round(time.Millisecond), m2.CacheHits, m2.Submitted, calls2, cost2)

	// Act four: priority lanes. A single worker faces a saturating batch
	// backlog when one latency-sensitive interactive trace arrives late.
	// The weighted two-lane dequeue hands the interactive job the next
	// free worker slot instead of the back of the FIFO line — the
	// iofleetd contract behind POST /v1/jobs?lane=interactive.
	lanePool := fleet.New(backend, fleet.Config{Workers: 1, QueueDepth: 8, MaxAttempts: 6})
	defer lanePool.Close()
	var batchJobs []*fleet.Job
	for i := 0; i < 8; i++ {
		j, err := lanePool.SubmitWith(makeTrace(int64(200+i)), fleet.SubmitOpts{Lane: fleet.LaneBatch})
		if err != nil {
			log.Fatal(err)
		}
		batchJobs = append(batchJobs, j)
	}
	start = time.Now()
	ji, err := lanePool.SubmitWith(makeTrace(300), fleet.SubmitOpts{Lane: fleet.LaneInteractive})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ji.Wait(); err != nil {
		log.Fatal(err)
	}
	interactiveWait := time.Since(start)
	pendingBatch := 0
	for _, j := range batchJobs {
		select {
		case <-j.Done():
		default:
			pendingBatch++
		}
	}
	lanePool.Wait()
	fmt.Printf("\npriority lanes: interactive job served in %v while %d/8 batch jobs still waited behind it\n",
		interactiveWait.Round(time.Millisecond), pendingBatch)

	// Act five: a two-node cluster. Each node is a real daemon surface
	// (internal/fleet/server) over its own pool; the router shards
	// submissions across them by consistent hash on the trace bytes and
	// fails over to the ring successor when a node dies — exactly what
	// `iofleetd -node-id` x N behind `iofleet-router` does on real ports.
	ctx := context.Background()
	type clusterNode struct {
		id   string
		pool *fleet.Pool
		srv  *httptest.Server
	}
	var nodes []*clusterNode
	for _, id := range []string{"nodeA", "nodeB"} {
		p := fleet.New(backend, fleet.Config{Workers: 4, MaxAttempts: 6, NodeID: id})
		s := httptest.NewServer(server.NewMux(server.Config{Pool: p, NodeID: id}))
		nodes = append(nodes, &clusterNode{id: id, pool: p, srv: s})
		defer p.Close()
		defer s.Close()
	}
	rt, err := router.New(router.Config{
		Members:       []string{nodes[0].srv.URL, nodes[1].srv.URL},
		ClientOptions: []client.Option{client.WithRetry(1, 10*time.Millisecond)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := client.New(front.URL, client.WithPollInterval(10*time.Millisecond))
	defer c.Close()

	perNode := map[string]int{}
	var lastRaw []byte
	for i := 0; i < 8; i++ {
		var buf bytes.Buffer
		if err := darshan.Encode(&buf, makeTrace(int64(400+i))); err != nil {
			log.Fatal(err)
		}
		raw := buf.Bytes()
		info, err := c.Submit(ctx, api.SubmitRequest{Lane: api.LaneBatch, Tenant: "demo", Trace: raw})
		if err != nil {
			log.Fatal(err)
		}
		node, _, _ := strings.Cut(info.ID, "-job-")
		perNode[node]++
		lastRaw = raw
		if _, err := c.WaitDiagnosis(ctx, info.ID); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ncluster: 8 traces sharded by digest -> nodeA:%d nodeB:%d (tenant \"demo\" accounted on both)\n",
		perNode["nodeA"], perNode["nodeB"])

	// Kill whichever node owns the last trace and resubmit it: the router
	// walks the ring to the survivor, which re-runs the work — safe
	// because submissions are idempotent by digest.
	ownerURL := rt.Route(lastRaw)[0]
	for _, n := range nodes {
		if n.srv.URL == ownerURL {
			fmt.Printf("cluster: killing %s (owner of the last trace)...\n", n.id)
			n.srv.Close()
		}
	}
	info, err := c.Submit(ctx, api.SubmitRequest{Trace: lastRaw})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.WaitDiagnosis(ctx, info.ID); err != nil {
		log.Fatal(err)
	}
	survivor, _, _ := strings.Cut(info.ID, "-job-")
	fmt.Printf("cluster: resubmission failed over to %s and completed (job %s)\n", survivor, info.ID)
}
