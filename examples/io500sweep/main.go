// Sweep the IO500 subset of TraceBench with IOAgent and print a
// trace-by-issue matrix comparing the diagnosis against the expert labels —
// the fleet-scan use case the paper positions Drishti for, done with
// grounded LLM diagnoses instead.
//
//	go run ./examples/io500sweep
package main

import (
	"fmt"
	"log"

	"ioagent/internal/ioagent"
	"ioagent/internal/issue"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
)

func main() {
	agent := ioagent.New(llm.NewSim(), ioagent.Options{})
	traces := tracebench.BySource(tracebench.Suite(), tracebench.IO500)

	// Short column keys per issue label.
	keys := map[issue.Label]string{}
	for i, l := range issue.All {
		keys[l] = fmt.Sprintf("%c%d", 'A'+i%26, i)
	}
	fmt.Println("legend:")
	for _, l := range issue.All {
		fmt.Printf("  %-3s %s\n", keys[l], l)
	}
	fmt.Printf("\n%-36s  %-8s %s\n", "trace", "F1", "diagnosed (+extra / -missed)")

	var sumF1 float64
	for _, tr := range traces {
		res, err := agent.Diagnose(tr.Log())
		if err != nil {
			log.Fatal(err)
		}
		got := res.Report.Labels()
		_, _, f1 := issue.F1(tr.Labels, got)
		sumF1 += f1
		row := ""
		for _, l := range issue.All {
			switch {
			case tr.Labels[l] && got[l]:
				row += keys[l] + " "
			case got[l]:
				row += "+" + keys[l] + " "
			case tr.Labels[l]:
				row += "-" + keys[l] + " "
			}
		}
		fmt.Printf("%-36s  %-8.2f %s\n", tr.Name, f1, row)
	}
	fmt.Printf("\nmean F1 over %d IO500 traces: %.3f\n", len(traces), sumF1/float64(len(traces)))
}
