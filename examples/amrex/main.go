// The Section III / Fig. 1 case study: an AMReX-style adaptive-mesh
// application (8 processes, 11 files on Lustre at /scratch with the default
// 1x1MiB striping, POSIX-dominant I/O despite being an MPI job) is
// diagnosed three ways:
//
//  1. a plain gpt-4-tier model queried directly with the parsed trace
//     (vague, planning-style output);
//
//  2. a plain gpt-4o-tier model (better, but it misses the MPI-IO bypass
//     in the latter half of the trace and repeats the "default striping is
//     optimal" misconception);
//
//  3. the full IOAgent pipeline (grounded, referenced, complete).
//
//     go run ./examples/amrex
package main

import (
	"fmt"
	"log"
	"strings"

	"ioagent/internal/darshan"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

// buildAMReXTrace simulates the paper's AMReX run: plotfile hierarchies and
// a checkpoint written through POSIX by an MPI job.
func buildAMReXTrace() *darshan.Log {
	sim := iosim.New(iosim.Config{
		Seed: 722, NProcs: 8, UsesMPI: true,
		Exe: "/apps/amrex/main3d.ex inputs.plt",
	})
	narrow := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}

	// Twenty-eight plotfiles, each written by all ranks in 100K-1M sized
	// pieces through plain POSIX (the framework's default path); together
	// with the checkpoint they push the parsed trace past the models'
	// context windows, as production AMReX traces do.
	for p := 0; p < 28; p++ {
		f := sim.OpenShared(fmt.Sprintf("/scratch/plt%05d/Cell_D_0000%d", p, p), iosim.POSIX, false, narrow)
		for rank := 0; rank < 8; rank++ {
			base := int64(rank) * (6 << 20)
			for i := int64(0); i < 24; i++ {
				f.WriteAt(rank, base+i*262144, 262144) // 256 KiB pieces
			}
		}
		f.Close()
	}
	// One large checkpoint, same pattern.
	chk := sim.OpenShared("/scratch/chk00100/Level_0", iosim.POSIX, false, narrow)
	for rank := 0; rank < 8; rank++ {
		base := int64(rank) * (32 << 20)
		for i := int64(0); i < 64; i++ {
			chk.WriteAt(rank, base+i*524288, 524288)
		}
	}
	chk.Close()
	return sim.Finalize()
}

func main() {
	trace := buildAMReXTrace()
	text, err := darshan.TextString(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AMReX-style trace: %d processes, %.0f s runtime, %d files, %d tokens of parsed text\n\n",
		trace.Job.NProcs, trace.Job.RunTime, len(trace.Module(darshan.ModulePOSIX).Files()), llm.CountTokens(text))

	client := llm.NewSim()
	prompt := "You are an HPC I/O expert. Analyze this Darshan trace and identify I/O performance issues:\n\n" + text

	for _, model := range []string{llm.GPT4, llm.GPT4o} {
		resp, err := client.Complete(llm.Prompt(model, prompt))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== plain %s (truncated context: %v) ===\n%s\n", model, resp.Truncated, resp.Content)
		labels := llm.ClaimedLabels(resp.Content)
		fmt.Printf("-> issues identified: %v\n", labels.Sorted())
		if strings.Contains(resp.Content, "optimal for minimizing") {
			fmt.Println("-> NOTE: repeated the stripe-size misconception (Section III)")
		}
		fmt.Println()
	}

	agent := ioagent.New(client, ioagent.Options{})
	res, err := agent.Diagnose(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== IOAgent (gpt-4o backbone) ===\n%s\n", res.Text)
	fmt.Printf("-> issues identified: %v\n", res.Report.Labels().Sorted())
	fmt.Printf("-> references cited: %v\n", res.Report.AllRefs())
}
