// The Fig. 5 scenario: an IO500-style trace performs 4 MiB reads and writes
// against the default Lustre stripe settings (count 1, size 1 MiB). The
// diagnosis flags the sub-optimal striping; the user then asks how to fix
// it, and IOAgent answers with commands tailored to the diagnosis
// (lfs setstripe -S 4M, raised stripe count) plus its references.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"

	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

func main() {
	sim := iosim.New(iosim.Config{Seed: 55, NProcs: 8, UsesMPI: true, Exe: "/bench/io500/ior"})
	defaultStripe := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
	f := sim.OpenShared("/scratch/io500/ior-easy.dat", iosim.MPIIndep, false, defaultStripe)
	for rank := 0; rank < 8; rank++ {
		base := int64(rank) * (64 << 20)
		for i := int64(0); i < 16; i++ {
			f.WriteAt(rank, base+i*(4<<20), 4<<20)
		}
	}
	for rank := 0; rank < 8; rank++ {
		base := int64(rank) * (64 << 20)
		for i := int64(0); i < 16; i++ {
			f.ReadAt(rank, base+i*(4<<20), 4<<20)
		}
	}
	f.Close()
	trace := sim.Finalize()

	agent := ioagent.New(llm.NewSim(), ioagent.Options{})
	res, err := agent.Diagnose(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text)

	session := agent.NewSession(res)
	for _, q := range []string{
		"How do I fix the stripe settings issue on the server side?",
		"And what should I change in the application code about collective I/O?",
	} {
		fmt.Printf("\nUSER> %s\n\n", q)
		answer, err := session.Ask(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(answer)
	}
}
