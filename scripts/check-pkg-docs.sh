#!/bin/sh
# check-pkg-docs.sh — docs gate for CI.
#
# Every package under internal/ must carry package documentation (a
# "// Package <name> ..." comment on some non-test file), and every command
# under cmd/ must carry a "// Command <name> ..." comment. Run from the
# repository root; exits non-zero listing the offenders.
set -u
fail=0

for dir in $(find internal -type d); do
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    files=$(ls "$dir"/*.go | grep -v '_test\.go$')
    [ -n "$files" ] || continue
    if ! grep -l '^// Package ' $files >/dev/null 2>&1; then
        echo "missing package documentation: $dir"
        fail=1
    fi
done

for dir in $(find cmd -type d); do
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    files=$(ls "$dir"/*.go | grep -v '_test\.go$')
    [ -n "$files" ] || continue
    if ! grep -l '^// Command ' $files >/dev/null 2>&1; then
        echo "missing command documentation: $dir"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs gate failed: add a doc.go (or top-of-file package comment) to the packages above" >&2
fi
exit "$fail"
