#!/bin/sh
# e2e-smoke.sh — CI smoke test for the versioned wire API and the
# multi-node cluster layer.
#
# Part 1 (single daemon): builds the binaries under the race detector,
# boots iofleetd (with -semcache) on an ephemeral port, round-trips one
# TraceBench trace through `ioagent -server` (the internal/fleet/client
# SDK) on each priority lane, then submits a near-duplicate of the same
# trace (text rendering + one extra metadata line, so the content digest
# differs) and asserts it is served as a similarity hit citing the
# original's digest. It then submits one scenario workload in both trace
# modalities (binary counter log, DXT per-operation text) and asserts the
# DXT rendering is diagnosed fresh — the cross-modality fence.
#
# Part 2 (cluster): boots TWO iofleetd nodes plus iofleet-router, routes
# both lanes through the router, restarts the router and checks a warm
# digest is still served from the owning node's cache, then kills one
# node mid-batch and asserts the batch still completes (ring-successor
# failover + digest-idempotent resubmit).
#
# Part 3 (streaming): streams a trace file through the router with
# `ioagent -stream` (digest asserted up front — zero router spool),
# streams the same trace from stdin (digest via trailer), checks the
# rendering-canonical cache hit, and drives a 64KB-chunk resumable
# upload session end to end.
#
# Part 4 (knowledge plane): boots a fresh two-daemon cluster with served,
# durable knowledge planes behind the router, broadcasts a corpus
# document and promotes it mid-batch (the in-flight batch must not fail),
# asserts the next fresh diagnosis cites the new document, kills one
# daemon with -9 and checks the promoted epoch survives the restart, then
# drives a one-sided swap and checks /v1/cluster reports the epoch skew.
#
# Part 5 (elastic fleet): boots two gossiping elastic daemons
# (-advertise/-peers, successor replication on) and a router that follows
# the live roster from a single seed; checks the router discovers the
# second member on its own, has a third daemon join mid-batch with zero
# client-visible errors, then kills a cache owner with -9 and asserts its
# previously-diagnosed digest is answered warm by the ring successor.
#
# Run from the repository root; exits non-zero on any failure.
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# start_daemon LOGFILE ARGS... — boots a binary on 127.0.0.1:0 and echoes
# its resolved address; the PID is appended to $pids via the global.
wait_addr() { # logfile pid
    _addr=""
    _i=0
    while [ "$_i" -lt 100 ]; do
        _addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$1" | head -1)
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "process exited early:" >&2; cat "$1" >&2; exit 1; }
        _i=$((_i + 1))
        sleep 0.1
    done
    [ -n "$_addr" ] || { echo "process never reported its address:" >&2; cat "$1" >&2; exit 1; }
    echo "$_addr"
}

echo "== building binaries (-race)"
go build -race -o "$workdir/iofleetd" ./cmd/iofleetd
go build -race -o "$workdir/iofleet-router" ./cmd/iofleet-router
go build -race -o "$workdir/ioagent" ./cmd/ioagent
go build -o "$workdir/tracebench" ./cmd/tracebench
go build -o "$workdir/darshan-parser" ./cmd/darshan-parser
go build -o "$workdir/fleetbench" ./cmd/fleetbench

echo "== materializing traces"
"$workdir/tracebench" -out "$workdir/traces" >/dev/null

echo "== [1/2] single daemon: booting iofleetd (-semcache) on an ephemeral port"
"$workdir/iofleetd" -addr 127.0.0.1:0 -workers 2 -semcache 2>"$workdir/daemon.log" &
daemon_pid=$!
pids="$pids $daemon_pid"
addr=$(wait_addr "$workdir/daemon.log" "$daemon_pid")
echo "   daemon at $addr"

trace=$(ls "$workdir"/traces/*.darshan | head -1)
echo "== round-tripping $(basename "$trace") through ioagent -server"
"$workdir/ioagent" -server "http://$addr" -lane interactive "$trace" >"$workdir/interactive.out"
grep -q "I/O" "$workdir/interactive.out" || { echo "interactive diagnosis looks empty:"; cat "$workdir/interactive.out"; exit 1; }

# The same trace on the batch lane must be answered from the result
# cache — the digest-addressed store is shared across lanes.
"$workdir/ioagent" -server "http://$addr" -lane batch "$trace" >"$workdir/batch.out"
grep -q "cache hit" "$workdir/batch.out" || { echo "batch resubmit was not a cache hit:"; cat "$workdir/batch.out"; exit 1; }

echo "== semantic reuse: near-duplicate must be a similarity hit"
# A text rendering with one extra metadata line: new content digest,
# identical I/O profile — the shape the similarity cache exists for.
"$workdir/darshan-parser" "$trace" >"$workdir/neardup.txt"
printf '# metadata: smoke_variant = neardup\n' >>"$workdir/neardup.txt"
"$workdir/ioagent" -server "http://$addr" -lane interactive "$workdir/neardup.txt" >"$workdir/neardup.out"
grep -q "similarity hit" "$workdir/neardup.out" \
    || { echo "near-duplicate was not served as a similarity hit:"; cat "$workdir/neardup.out"; exit 1; }
if grep '^=== ' "$workdir/neardup.out" | grep -q ", cache hit"; then
    echo "similarity hit must not also claim an exact cache hit:"; cat "$workdir/neardup.out"; exit 1
fi
# The reused diagnosis must cite the ORIGINAL trace's digest: the jobs
# list holds exactly one source_digest, and it must equal the digest of
# one of the other (fresh) jobs.
jobs_json=$(curl -sf "http://$addr/v1/jobs")
src=$(printf '%s' "$jobs_json" | sed -n 's/.*"source_digest": *"\([0-9a-f]*\)".*/\1/p' | head -1)
[ -n "$src" ] || { echo "similarity-hit job carries no source_digest:"; printf '%s\n' "$jobs_json"; exit 1; }
printf '%s' "$jobs_json" | grep -q "\"digest\": \"$src\"" \
    || { echo "source_digest $src does not match any diagnosed job's digest:"; printf '%s\n' "$jobs_json"; exit 1; }

echo "== checking Prometheus exposition"
curl -sf -H 'Accept: text/plain' "http://$addr/metrics" | grep -q '^fleet_jobs_done_total' \
    || { echo "/metrics text exposition missing fleet_jobs_done_total"; exit 1; }
curl -sf -H 'Accept: text/plain' "http://$addr/metrics" | grep -q '^fleet_semcache_hits_total 1' \
    || { echo "/metrics exposition missing fleet_semcache_hits_total 1"; exit 1; }

echo "== cross-modality fence: DXT rendering must never reuse a counter diagnosis"
# The same adversarial workload in both modalities: the binary counter log
# and the DXT per-operation text rendering. Their derived profiles sit
# close in feature space, but the evidence classes differ — the DXT
# submission must be diagnosed fresh, never served via similarity hit.
"$workdir/fleetbench" -dump "$workdir/scenarios" -dump-only
"$workdir/ioagent" -server "http://$addr" -lane interactive "$workdir/scenarios/tiny-unaligned-writes.trace" >"$workdir/mod-darshan.out"
grep -q "I/O" "$workdir/mod-darshan.out" || { echo "darshan-modality scenario diagnosis looks empty:"; cat "$workdir/mod-darshan.out"; exit 1; }
"$workdir/ioagent" -server "http://$addr" -lane interactive "$workdir/scenarios/tiny-unaligned-writes-dxt.trace" >"$workdir/mod-dxt.out"
grep -q "I/O" "$workdir/mod-dxt.out" || { echo "DXT-modality scenario diagnosis looks empty:"; cat "$workdir/mod-dxt.out"; exit 1; }
if grep '^=== ' "$workdir/mod-dxt.out" | grep -q "similarity hit"; then
    echo "cross-modality fence breached: DXT trace served a counter diagnosis:"; cat "$workdir/mod-dxt.out"; exit 1
fi
if grep '^=== ' "$workdir/mod-dxt.out" | grep -q ", cache hit"; then
    echo "DXT rendering collapsed onto the counter digest:"; cat "$workdir/mod-dxt.out"; exit 1
fi

echo "== clean shutdown of the single daemon"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true

echo "== [2/2] cluster: booting two iofleetd nodes"
# -api-latency stretches each diagnosis so the mid-batch kill below lands
# while work is genuinely in flight.
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id n1 -workers 2 -api-latency 300ms 2>"$workdir/n1.log" &
n1_pid=$!
pids="$pids $n1_pid"
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id n2 -workers 2 -api-latency 300ms 2>"$workdir/n2.log" &
n2_pid=$!
pids="$pids $n2_pid"
n1=$(wait_addr "$workdir/n1.log" "$n1_pid")
n2=$(wait_addr "$workdir/n2.log" "$n2_pid")
echo "   nodes at $n1 (n1) and $n2 (n2)"

echo "== booting iofleet-router over both nodes"
"$workdir/iofleet-router" -addr 127.0.0.1:0 -nodes "http://$n1,http://$n2" 2>"$workdir/router.log" &
router_pid=$!
pids="$pids $router_pid"
router=$(wait_addr "$workdir/router.log" "$router_pid")
echo "   router at $router"

echo "== round-tripping both lanes through the router"
"$workdir/ioagent" -server "http://$router" -lane interactive -tenant smoke "$trace" >"$workdir/r-interactive.out"
grep -q "I/O" "$workdir/r-interactive.out" || { echo "router interactive diagnosis looks empty:"; cat "$workdir/r-interactive.out"; exit 1; }
"$workdir/ioagent" -server "http://$router" -lane batch -tenant smoke "$trace" >"$workdir/r-batch.out"
grep -q "cache hit" "$workdir/r-batch.out" || { echo "router batch resubmit was not a cache hit:"; cat "$workdir/r-batch.out"; exit 1; }

echo "== checking aggregated metrics through the router"
curl -sf "http://$router/metrics" | grep -q '"tenant_jobs"' \
    || { echo "router metrics missing per-tenant counters"; exit 1; }
curl -sf -H 'Accept: text/plain' "http://$router/metrics" | grep -q '^fleet_owned_digests' \
    || { echo "router exposition missing fleet_owned_digests"; exit 1; }
curl -sf "http://$router/v1/cluster" | grep -q '"healthy": true' \
    || { echo "cluster health reports no healthy node"; exit 1; }

echo "== restarting the router: warm digest must hit the owning node's cache"
kill -TERM "$router_pid"
wait "$router_pid" || true
"$workdir/iofleet-router" -addr 127.0.0.1:0 -nodes "http://$n1,http://$n2" 2>"$workdir/router2.log" &
router_pid=$!
pids="$pids $router_pid"
router=$(wait_addr "$workdir/router2.log" "$router_pid")
"$workdir/ioagent" -server "http://$router" -lane interactive "$trace" >"$workdir/r-warm.out"
grep -q "cache hit" "$workdir/r-warm.out" || { echo "warm digest missed after router restart:"; cat "$workdir/r-warm.out"; exit 1; }

echo "== killing node n2 mid-batch: the batch must still complete"
batch_traces=$(ls "$workdir"/traces/*.darshan | head -4)
# shellcheck disable=SC2086
"$workdir/ioagent" -server "http://$router" -lane batch $batch_traces >"$workdir/r-kill.out" 2>"$workdir/r-kill.err" &
batch_pid=$!
sleep 0.4
kill -KILL "$n2_pid" 2>/dev/null || true
if ! wait "$batch_pid"; then
    echo "batch failed after killing n2:"
    cat "$workdir/r-kill.out" "$workdir/r-kill.err"
    echo "--- router log ---"; tail -20 "$workdir/router.log" "$workdir/router2.log" 2>/dev/null
    exit 1
fi
done_count=$(grep -c "done" "$workdir/r-kill.out" || true)
[ "$done_count" -ge 4 ] || { echo "batch reported only $done_count done jobs of 4:"; cat "$workdir/r-kill.out"; exit 1; }
echo "   batch of 4 completed with n2 dead ($done_count reports)"

echo "== [3/3] streaming ingest through the router"
stream_trace=$(ls "$workdir"/traces/*.darshan | sed -n 5p)
echo "== streaming $(basename "$stream_trace") as a file (digest header, zero spool)"
"$workdir/ioagent" -server "http://$router" -stream "$stream_trace" >"$workdir/s-file.out"
grep -q "digest " "$workdir/s-file.out" || { echo "file stream did not assert a digest:"; cat "$workdir/s-file.out"; exit 1; }
grep -q "done" "$workdir/s-file.out" || { echo "file stream diagnosis missing:"; cat "$workdir/s-file.out"; exit 1; }

echo "== streaming the same trace from stdin (trailer digest): must cache-hit"
"$workdir/ioagent" -server "http://$router" -stream - <"$stream_trace" >"$workdir/s-stdin.out"
grep -q "cache hit" "$workdir/s-stdin.out" || { echo "stdin re-stream was not a cache hit:"; cat "$workdir/s-stdin.out"; exit 1; }

echo "== resumable upload session in 64KB chunks"
stream_trace2=$(ls "$workdir"/traces/*.darshan | sed -n 6p)
"$workdir/ioagent" -server "http://$router" -stream -chunk 65536 "$stream_trace2" >"$workdir/s-chunked.out"
grep -q "done" "$workdir/s-chunked.out" || { echo "chunked upload diagnosis missing:"; cat "$workdir/s-chunked.out"; exit 1; }

echo "== shutting down the part-2/3 cluster"
kill -TERM "$router_pid" "$n1_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
wait "$n1_pid" 2>/dev/null || true
pids=""

echo "== [4/4] knowledge plane: booting two knowledge-serving daemons"
# Durable planes (-state-dir carries the knowledge WAL) with the ANN
# index on; -api-latency stretches diagnoses so the epoch swap below
# lands while the batch is genuinely in flight.
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id k1 -workers 2 -api-latency 300ms \
    -knowledge -knowledge-members k1,k2 -ann -state-dir "$workdir/k1-state" 2>"$workdir/k1.log" &
k1_pid=$!
pids="$pids $k1_pid"
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id k2 -workers 2 -api-latency 300ms \
    -knowledge -knowledge-members k1,k2 -ann -state-dir "$workdir/k2-state" 2>"$workdir/k2.log" &
k2_pid=$!
pids="$pids $k2_pid"
k1=$(wait_addr "$workdir/k1.log" "$k1_pid")
k2=$(wait_addr "$workdir/k2.log" "$k2_pid")
"$workdir/iofleet-router" -addr 127.0.0.1:0 -nodes "http://$k1,http://$k2" 2>"$workdir/krouter.log" &
krouter_pid=$!
pids="$pids $krouter_pid"
krouter=$(wait_addr "$workdir/krouter.log" "$krouter_pid")
echo "   nodes at $k1 (k1) and $k2 (k2), router at $krouter"

echo "== baseline diagnosis from the compiled-in corpus (epoch 1)"
"$workdir/ioagent" -server "http://$krouter" "$workdir/scenarios/metadata-storm.trace" >"$workdir/k-base.out"
grep -q "I/O" "$workdir/k-base.out" || { echo "baseline knowledge diagnosis looks empty:"; cat "$workdir/k-base.out"; exit 1; }
if grep -q "e2esync-advisory" "$workdir/k-base.out"; then
    echo "baseline diagnosis cites a document that does not exist yet:"; cat "$workdir/k-base.out"; exit 1
fi

echo "== upsert + swap mid-batch: in-flight diagnoses must not fail"
batch_traces=$(ls "$workdir"/traces/*.darshan | head -4)
# shellcheck disable=SC2086
"$workdir/ioagent" -server "http://$krouter" -lane batch $batch_traces >"$workdir/k-batch.out" 2>"$workdir/k-batch.err" &
kbatch_pid=$!
sleep 0.2
curl -sf -X POST "http://$krouter/v1/knowledge/docs" -d '{"docs":[{
  "key": "e2esync-advisory",
  "title": "Fleet advisory: metadata storm mitigation",
  "text": "When metadata operations such as open and stat account for most of the observed I/O time, the metadata server has become the bottleneck: every process that performed thousands of metadata operations (opens and stats) adds load on the mdt. Batch stat calls, cache open file handles, and spread directory entries across mdt targets to reduce metadata time."
}]}' >/dev/null || { echo "broadcast knowledge upsert failed"; exit 1; }
curl -sf -X POST "http://$krouter/v1/knowledge/swap" -d '{}' | grep -q '"epoch": 2' \
    || { echo "broadcast swap did not promote epoch 2"; exit 1; }
if ! wait "$kbatch_pid"; then
    echo "in-flight batch failed across the epoch swap:"
    cat "$workdir/k-batch.out" "$workdir/k-batch.err"; exit 1
fi
kdone=$(grep -c "done" "$workdir/k-batch.out" || true)
[ "$kdone" -ge 4 ] || { echo "batch across swap reported only $kdone done jobs of 4:"; cat "$workdir/k-batch.out"; exit 1; }
echo "   batch of 4 completed across the swap ($kdone reports)"

echo "== fresh diagnosis at epoch 2 must cite the new document"
# A text rendering with one extra metadata line: a new content digest, so
# the diagnosis is computed fresh against the promoted corpus.
"$workdir/darshan-parser" "$workdir/scenarios/metadata-storm.trace" >"$workdir/k-variant.txt"
printf '# metadata: smoke_variant = knowledge\n' >>"$workdir/k-variant.txt"
"$workdir/ioagent" -server "http://$krouter" "$workdir/k-variant.txt" >"$workdir/k-post.out"
grep -q "e2esync-advisory" "$workdir/k-post.out" \
    || { echo "post-swap diagnosis does not cite the upserted document:"; cat "$workdir/k-post.out"; exit 1; }

echo "== kill -9 k2: the promoted epoch must survive the restart"
kill -KILL "$k2_pid" 2>/dev/null || true
wait "$k2_pid" 2>/dev/null || true
"$workdir/iofleetd" -addr "$k2" -node-id k2 -workers 2 -api-latency 300ms \
    -knowledge -knowledge-members k1,k2 -ann -state-dir "$workdir/k2-state" 2>"$workdir/k2b.log" &
k2_pid=$!
pids="$pids $k2_pid"
k2=$(wait_addr "$workdir/k2b.log" "$k2_pid")
curl -sf "http://$k2/v1/knowledge" | grep -q '"epoch": 2' \
    || { echo "knowledge epoch did not survive kill -9:"; curl -s "http://$k2/v1/knowledge"; exit 1; }
echo "   k2 recovered at epoch 2 from its knowledge WAL"

echo "== one-sided swap must surface as cluster epoch skew"
curl -sf -X POST "http://$k1/v1/knowledge/docs" -d '{"remove":["e2esync-advisory"]}' >/dev/null
curl -sf -X POST "http://$k1/v1/knowledge/swap" -d '{}' >/dev/null
curl -sf "http://$krouter/v1/cluster" | grep -q '"knowledge_epoch_skew": true' \
    || { echo "one-sided swap not reported as knowledge_epoch_skew:"; curl -s "http://$krouter/v1/cluster"; exit 1; }
curl -sf -X POST "http://$k2/v1/knowledge/docs" -d '{"remove":["e2esync-advisory"]}' >/dev/null
curl -sf -X POST "http://$k2/v1/knowledge/swap" -d '{}' >/dev/null
if curl -sf "http://$krouter/v1/cluster" | grep -q '"knowledge_epoch_skew": true'; then
    echo "converged fleet still reports knowledge_epoch_skew:"; curl -s "http://$krouter/v1/cluster"; exit 1
fi
echo "   skew raised on divergence, cleared on convergence"

echo "== shutting down the part-4 cluster"
kill -TERM "$krouter_pid" "$k1_pid" "$k2_pid" 2>/dev/null || true
wait "$krouter_pid" 2>/dev/null || true
wait "$k1_pid" 2>/dev/null || true
wait "$k2_pid" 2>/dev/null || true
pids=""

echo "== [5/5] elastic fleet: live join, roster-following router, kill -9 warm failover"
# Two elastic members joining by gossip (-advertise auto resolves the
# ephemeral port) with successor replication on, and a router seeded with
# ONLY the first member — ex2 must arrive via the roster protocol.
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id ex1 -workers 2 -api-latency 300ms \
    -advertise auto -replicate 2 -roster-interval 100ms 2>"$workdir/ex1.log" &
ex1_pid=$!
pids="$pids $ex1_pid"
ex1=$(wait_addr "$workdir/ex1.log" "$ex1_pid")
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id ex2 -workers 2 -api-latency 300ms \
    -advertise auto -peers "http://$ex1" -replicate 2 -roster-interval 100ms 2>"$workdir/ex2.log" &
ex2_pid=$!
pids="$pids $ex2_pid"
ex2=$(wait_addr "$workdir/ex2.log" "$ex2_pid")
"$workdir/iofleet-router" -addr 127.0.0.1:0 -nodes "http://$ex1" -roster-refresh 200ms 2>"$workdir/erouter.log" &
erouter_pid=$!
pids="$pids $erouter_pid"
erouter=$(wait_addr "$workdir/erouter.log" "$erouter_pid")
echo "   members at $ex1 (ex1) and $ex2 (ex2), roster-following router at $erouter"

wait_members() { # count
    _i=0
    while [ "$_i" -lt 100 ]; do
        _n=$(curl -s "http://$erouter/v1/cluster" | grep -c '"healthy": true' || true)
        [ "$_n" -ge "$1" ] && return 0
        _i=$((_i + 1))
        sleep 0.1
    done
    echo "router never saw $1 healthy members:" >&2
    curl -s "http://$erouter/v1/cluster" >&2
    exit 1
}
echo "== router must discover ex2 from the live roster (it was seeded with ex1 only)"
wait_members 2

echo "== ex3 joins mid-batch: zero client-visible errors"
batch_traces=$(ls "$workdir"/traces/*.darshan | head -4)
# shellcheck disable=SC2086
"$workdir/ioagent" -server "http://$erouter" -lane batch $batch_traces >"$workdir/e-soak.out" 2>"$workdir/e-soak.err" &
soak_pid=$!
sleep 0.4
"$workdir/iofleetd" -addr 127.0.0.1:0 -node-id ex3 -workers 2 -api-latency 300ms \
    -advertise auto -peers "http://$ex1" -replicate 2 -roster-interval 100ms 2>"$workdir/ex3.log" &
ex3_pid=$!
pids="$pids $ex3_pid"
ex3=$(wait_addr "$workdir/ex3.log" "$ex3_pid")
if ! wait "$soak_pid"; then
    echo "batch failed across the live join:"
    cat "$workdir/e-soak.out" "$workdir/e-soak.err"
    exit 1
fi
edone=$(grep -c "done" "$workdir/e-soak.out" || true)
[ "$edone" -ge 4 ] || { echo "batch across the join reported only $edone done jobs of 4:"; cat "$workdir/e-soak.out"; exit 1; }
wait_members 3
echo "   batch of 4 completed across the join; roster converged at 3 members"

echo "== kill -9 a cache owner: its digest must be answered warm by the successor"
# Sum of accepted replica copies across the fleet — the signal that a
# fresh diagnosis has landed on its successor as well as its owner.
replica_total() {
    _t=0
    for _a in "$@"; do
        _v=$(curl -s -H 'Accept: text/plain' "http://$_a/metrics" | sed -n 's/^fleet_handoff_replica_received_total //p')
        _t=$((_t + ${_v:-0}))
    done
    echo "$_t"
}
before=$(replica_total "$ex1" "$ex2" "$ex3")
fresh=$(ls "$workdir"/traces/*.darshan | sed -n 5p)
"$workdir/ioagent" -server "http://$erouter" -lane interactive "$fresh" >"$workdir/e-fresh.out"
grep -q "done" "$workdir/e-fresh.out" || { echo "fresh elastic diagnosis missing:"; cat "$workdir/e-fresh.out"; exit 1; }
owner=$(sed -n 's/.*(\(ex[0-9]\)-job-[0-9]*,.*/\1/p' "$workdir/e-fresh.out" | head -1)
[ -n "$owner" ] || { echo "could not extract the owning node from:"; cat "$workdir/e-fresh.out"; exit 1; }
_i=0
while [ "$_i" -lt 100 ]; do
    [ "$(replica_total "$ex1" "$ex2" "$ex3")" -gt "$before" ] && break
    _i=$((_i + 1))
    sleep 0.1
done
[ "$(replica_total "$ex1" "$ex2" "$ex3")" -gt "$before" ] || { echo "fresh diagnosis never replicated to a successor"; exit 1; }
case "$owner" in
ex1) kill -KILL "$ex1_pid" 2>/dev/null || true ;;
ex2) kill -KILL "$ex2_pid" 2>/dev/null || true ;;
ex3) kill -KILL "$ex3_pid" 2>/dev/null || true ;;
esac
echo "   killed owner $owner; resubmitting its digest"
"$workdir/ioagent" -server "http://$erouter" -lane interactive "$fresh" >"$workdir/e-warm.out"
grep -q "cache hit" "$workdir/e-warm.out" || { echo "digest not served warm after killing its owner:"; cat "$workdir/e-warm.out"; exit 1; }
if grep -q "($owner-job-" "$workdir/e-warm.out"; then
    echo "warm answer claims the dead owner $owner:"
    cat "$workdir/e-warm.out"
    exit 1
fi
echo "   successor answered warm with $owner dead"

echo "== clean shutdown"
kill -TERM "$erouter_pid" "$ex1_pid" "$ex2_pid" "$ex3_pid" 2>/dev/null || true
wait "$erouter_pid" 2>/dev/null || true
wait "$ex1_pid" 2>/dev/null || true
wait "$ex2_pid" 2>/dev/null || true
wait "$ex3_pid" 2>/dev/null || true
pids=""
echo "e2e smoke OK"
