#!/bin/sh
# e2e-smoke.sh — CI smoke test for the versioned wire API.
#
# Builds both binaries under the race detector, boots iofleetd on an
# ephemeral port, and round-trips one TraceBench trace through
# `ioagent -server` (the internal/fleet/client SDK) on each priority
# lane. Run from the repository root; exits non-zero on any failure.
set -eu

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== building binaries (-race)"
go build -race -o "$workdir/iofleetd" ./cmd/iofleetd
go build -race -o "$workdir/ioagent" ./cmd/ioagent
go build -o "$workdir/tracebench" ./cmd/tracebench

echo "== materializing traces"
"$workdir/tracebench" -out "$workdir/traces" >/dev/null

echo "== booting iofleetd on an ephemeral port"
"$workdir/iofleetd" -addr 127.0.0.1:0 -workers 2 2>"$workdir/daemon.log" &
daemon_pid=$!

addr=""
i=0
while [ "$i" -lt 100 ]; do
    addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$workdir/daemon.log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon exited early:"; cat "$workdir/daemon.log"; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never reported its address:"; cat "$workdir/daemon.log"; exit 1; }
echo "   daemon at $addr"

trace=$(ls "$workdir"/traces/*.darshan | head -1)
echo "== round-tripping $(basename "$trace") through ioagent -server"
"$workdir/ioagent" -server "http://$addr" -lane interactive "$trace" >"$workdir/interactive.out"
grep -q "I/O" "$workdir/interactive.out" || { echo "interactive diagnosis looks empty:"; cat "$workdir/interactive.out"; exit 1; }

# The same trace on the batch lane must be answered from the result
# cache — the digest-addressed store is shared across lanes.
"$workdir/ioagent" -server "http://$addr" -lane batch "$trace" >"$workdir/batch.out"
grep -q "cache hit" "$workdir/batch.out" || { echo "batch resubmit was not a cache hit:"; cat "$workdir/batch.out"; exit 1; }

echo "== checking Prometheus exposition"
curl -sf -H 'Accept: text/plain' "http://$addr/metrics" | grep -q '^fleet_jobs_done_total' \
    || { echo "/metrics text exposition missing fleet_jobs_done_total"; exit 1; }

echo "== clean shutdown"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""
echo "e2e smoke OK"
